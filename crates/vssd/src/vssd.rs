//! Virtual SSD configuration.

use fleetio_des::SimDuration;
use fleetio_flash::addr::ChannelId;

/// Identifier of a virtual SSD instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VssdId(pub u32);

impl std::fmt::Display for VssdId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vssd{}", self.0)
    }
}

/// How a vSSD's channels are shared (§2.1 and Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationMode {
    /// The vSSD fully owns its channels (strongest isolation, lowest
    /// utilization). FleetIO starts every vSSD in this mode by default
    /// (§4.1) and harvests across them.
    Hardware,
    /// The vSSD shares its channels with other software-isolated vSSDs,
    /// throttled by a token bucket and scheduled by stride scheduling.
    Software,
}

/// Configuration of one vSSD.
#[derive(Debug, Clone, PartialEq)]
pub struct VssdConfig {
    /// Identifier, unique within an engine.
    pub id: VssdId,
    /// Home channels allocated to this vSSD.
    pub channels: Vec<ChannelId>,
    /// Isolation mode of the home channels.
    pub isolation: IsolationMode,
    /// Tail-latency SLO. A completed request counts as an SLO violation
    /// when its latency exceeds this bound. `None` disables SLO tracking
    /// (e.g. for pure-bandwidth tenants before calibration).
    pub slo: Option<SimDuration>,
    /// Token-bucket rate limit in bytes/second for software isolation;
    /// ignored under hardware isolation. `None` means unthrottled.
    pub rate_limit: Option<f64>,
    /// Stride-scheduling tickets (share weight) under software isolation.
    pub tickets: u32,
    /// Fraction of the listed channels' logical capacity this vSSD may
    /// address. Hardware-isolated vSSDs own their channels outright (1.0);
    /// software-isolated vSSDs sharing channels must split the capacity
    /// (e.g. 0.5 each for two tenants) or they would overcommit the flash.
    pub capacity_share: f64,
}

impl VssdConfig {
    /// A hardware-isolated vSSD on `channels` with no SLO.
    pub fn hardware(id: VssdId, channels: Vec<ChannelId>) -> Self {
        VssdConfig {
            id,
            channels,
            isolation: IsolationMode::Hardware,
            slo: None,
            rate_limit: None,
            tickets: 100,
            capacity_share: 1.0,
        }
    }

    /// A software-isolated vSSD on `channels` with no SLO.
    pub fn software(id: VssdId, channels: Vec<ChannelId>) -> Self {
        VssdConfig {
            isolation: IsolationMode::Software,
            ..Self::hardware(id, channels)
        }
    }

    /// Sets the tail-latency SLO (builder style).
    pub fn with_slo(mut self, slo: SimDuration) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Sets the token-bucket rate limit in bytes/second (builder style).
    pub fn with_rate_limit(mut self, bytes_per_sec: f64) -> Self {
        self.rate_limit = Some(bytes_per_sec);
        self
    }

    /// Sets the capacity share (builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `share` is in `(0, 1]`.
    pub fn with_capacity_share(mut self, share: f64) -> Self {
        assert!(
            share > 0.0 && share <= 1.0,
            "capacity share must be in (0, 1]"
        );
        self.capacity_share = share;
        self
    }

    /// Sets the stride tickets (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `tickets` is zero.
    pub fn with_tickets(mut self, tickets: u32) -> Self {
        assert!(tickets > 0, "tickets must be positive");
        self.tickets = tickets;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when the vSSD has no channels or duplicated
    /// channels.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels.is_empty() {
            return Err(format!("{} has no channels", self.id));
        }
        let mut sorted = self.channels.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != self.channels.len() {
            return Err(format!("{} has duplicate channels", self.id));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = VssdConfig::hardware(VssdId(1), vec![ChannelId(0), ChannelId(1)])
            .with_slo(SimDuration::from_millis(1))
            .with_rate_limit(1e6)
            .with_tickets(50);
        assert_eq!(c.isolation, IsolationMode::Hardware);
        assert_eq!(c.slo, Some(SimDuration::from_millis(1)));
        assert_eq!(c.rate_limit, Some(1e6));
        assert_eq!(c.tickets, 50);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn software_mode_flag() {
        let c = VssdConfig::software(VssdId(2), vec![ChannelId(0)]);
        assert_eq!(c.isolation, IsolationMode::Software);
    }

    #[test]
    fn validate_rejects_empty_and_duplicates() {
        let c = VssdConfig::hardware(VssdId(0), vec![]);
        assert!(c.validate().is_err());
        let c = VssdConfig::hardware(VssdId(0), vec![ChannelId(1), ChannelId(1)]);
        assert!(c.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    #[should_panic(expected = "tickets must be positive")]
    fn zero_tickets_panics() {
        let _ = VssdConfig::hardware(VssdId(0), vec![ChannelId(0)]).with_tickets(0);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(VssdId(3).to_string(), "vssd3");
    }
}
