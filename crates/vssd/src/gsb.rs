//! The ghost superblock (gSB) abstraction (§3.6 of the paper).
//!
//! A gSB is a harvestable superblock striped across one or more channels of
//! its *home* vSSD. The gSB manager keeps unharvested gSBs in a pool of
//! lists indexed by channel count (`n_chls`); harvesting takes the first gSB
//! from the exact list, falling back to smaller lists first and then larger
//! ones, exactly as the paper describes. Harvested gSBs carry the harvesting
//! vSSD's writes until they are reclaimed.
//!
//! The paper stores gSB metadata as `{n_chls, capacity, in_use, home_vssd,
//! harvest_vssd}` (Figure 7); [`GhostSuperblock`] carries the same fields
//! plus the concrete block list and an append cursor, which on real hardware
//! live in the block-level mapping the gSB manager initializes at creation.

use std::collections::BTreeMap;

use fleetio_flash::addr::{BlockAddr, ChannelId};

use crate::vssd::VssdId;

/// Identifier of a ghost superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GsbId(pub u64);

impl std::fmt::Display for GsbId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gsb{}", self.0)
    }
}

/// One ghost superblock.
#[derive(Debug, Clone)]
pub struct GhostSuperblock {
    /// Identifier within the pool.
    pub id: GsbId,
    /// Channels the superblock stripes across (`n_chls = channels.len()`).
    pub channels: Vec<ChannelId>,
    /// The flash blocks backing the superblock, grouped round-robin across
    /// channels for striping.
    pub blocks: Vec<BlockAddr>,
    /// The vSSD that gave up these resources.
    pub home: VssdId,
    /// The vSSD currently harvesting the gSB, if any.
    pub harvester: Option<VssdId>,
    /// Append rotation cursor over `blocks`.
    cursor: usize,
}

impl GhostSuperblock {
    /// Builds a gSB over `blocks` striped across `channels`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `blocks` is empty.
    pub fn new(id: GsbId, home: VssdId, channels: Vec<ChannelId>, blocks: Vec<BlockAddr>) -> Self {
        assert!(
            !channels.is_empty(),
            "gSB must stripe across at least one channel"
        );
        assert!(!blocks.is_empty(), "gSB must contain at least one block");
        GhostSuperblock {
            id,
            channels,
            blocks,
            home,
            harvester: None,
            cursor: 0,
        }
    }

    /// Number of channels the gSB stripes across (the paper's `n_chls`).
    pub fn n_chls(&self) -> usize {
        self.channels.len()
    }

    /// Capacity in blocks (the paper's `capacity`, in superblock units).
    pub fn capacity_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the gSB is currently harvested (the paper's `in_use` bit).
    pub fn in_use(&self) -> bool {
        self.harvester.is_some()
    }

    /// Advances the append rotation and returns the next backing block.
    ///
    /// Rotating across blocks (which are grouped across channels) stripes
    /// the harvester's writes over all of the gSB's channels.
    pub fn rotate_block(&mut self) -> BlockAddr {
        // GC may have shrunk the block list since the last rotation.
        self.cursor %= self.blocks.len();
        let b = self.blocks[self.cursor];
        self.cursor = (self.cursor + 1) % self.blocks.len();
        b
    }
}

/// Outcome of a harvest attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarvestError {
    /// No gSB is available for this harvester (pool empty or only own gSBs).
    NoneAvailable,
}

impl std::fmt::Display for HarvestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarvestError::NoneAvailable => write!(f, "no harvestable ghost superblock available"),
        }
    }
}

impl std::error::Error for HarvestError {}

/// The gSB pool: available gSBs in per-`n_chls` lists (§3.6, Figure 8).
#[derive(Debug, Clone)]
pub struct GsbPool {
    /// `lists[n]` holds available (unharvested) gSBs with `n_chls == n + 1`,
    /// newest first (the paper inserts at the head of the list).
    lists: Vec<Vec<GsbId>>,
    gsbs: BTreeMap<GsbId, GhostSuperblock>,
    next_id: u64,
}

impl GsbPool {
    /// Creates an empty pool for a device with `max_channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `max_channels` is zero.
    pub fn new(max_channels: usize) -> Self {
        assert!(max_channels > 0, "pool needs at least one channel class");
        GsbPool {
            lists: vec![Vec::new(); max_channels],
            gsbs: BTreeMap::new(),
            next_id: 0,
        }
    }

    /// Creates a gSB from `blocks` striped over `channels` and inserts it at
    /// the head of its `n_chls` list. Returns the new id.
    ///
    /// # Panics
    ///
    /// Panics if `channels.len()` exceeds the pool's channel classes, or if
    /// `channels`/`blocks` is empty.
    pub fn create(
        &mut self,
        home: VssdId,
        channels: Vec<ChannelId>,
        blocks: Vec<BlockAddr>,
    ) -> GsbId {
        assert!(
            channels.len() <= self.lists.len(),
            "n_chls exceeds device channels"
        );
        let id = GsbId(self.next_id);
        self.next_id += 1;
        let gsb = GhostSuperblock::new(id, home, channels, blocks);
        self.lists[gsb.n_chls() - 1].insert(0, id);
        self.gsbs.insert(id, gsb);
        id
    }

    /// Looks up a gSB by id.
    pub fn get(&self, id: GsbId) -> Option<&GhostSuperblock> {
        self.gsbs.get(&id)
    }

    /// Mutable lookup by id.
    pub fn get_mut(&mut self, id: GsbId) -> Option<&mut GhostSuperblock> {
        self.gsbs.get_mut(&id)
    }

    /// Number of available (unharvested) gSBs with exactly `n_chls`.
    pub fn available_with(&self, n_chls: usize) -> usize {
        self.lists.get(n_chls.wrapping_sub(1)).map_or(0, Vec::len)
    }

    /// Sum of `n_chls` over all available (unharvested) gSBs — the pool's
    /// harvestable channel supply.
    pub fn available_channels_total(&self) -> usize {
        self.lists
            .iter()
            .enumerate()
            .map(|(i, l)| (i + 1) * l.len())
            .sum()
    }

    /// Sum of `n_chls` of gSBs currently harvested by `harvester`.
    pub fn harvested_channels_by(&self, harvester: VssdId) -> usize {
        self.gsbs
            .values()
            .filter(|g| g.harvester == Some(harvester))
            .map(|g| g.n_chls())
            .sum()
    }

    /// Total available (unharvested) gSBs.
    pub fn available_total(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }

    /// Ids of every gSB (available or harvested) whose home is `home`.
    pub fn of_home(&self, home: VssdId) -> Vec<GsbId> {
        let mut ids: Vec<GsbId> = self
            .gsbs
            .values()
            .filter(|g| g.home == home)
            .map(|g| g.id)
            .collect();
        ids.sort();
        ids
    }

    /// Harvests a gSB with the desired `n_chls` for `harvester`.
    ///
    /// Search order follows §3.6: the exact list first, then lists with
    /// *smaller* `n_chls` (largest of those first), then larger lists
    /// (smallest first). A vSSD never harvests its own gSBs.
    ///
    /// # Errors
    ///
    /// Returns [`HarvestError::NoneAvailable`] when no eligible gSB exists.
    pub fn harvest(&mut self, harvester: VssdId, n_chls: usize) -> Result<GsbId, HarvestError> {
        let want = n_chls.clamp(1, self.lists.len());
        let exact = want - 1;
        let order = std::iter::once(exact)
            .chain((0..exact).rev())
            .chain(exact + 1..self.lists.len());
        for li in order {
            let pos = self.lists[li]
                .iter()
                .position(|id| self.gsbs[id].home != harvester);
            if let Some(pos) = pos {
                let id = self.lists[li].remove(pos);
                let gsb = self.gsbs.get_mut(&id).expect("listed gSB exists");
                gsb.harvester = Some(harvester);
                return Ok(id);
            }
        }
        Err(HarvestError::NoneAvailable)
    }

    /// Ids of every currently-harvested gSB (for conservation auditing).
    #[cfg(feature = "audit")]
    pub fn harvested_ids(&self) -> std::collections::BTreeSet<GsbId> {
        self.gsbs
            .values()
            .filter(|g| g.in_use())
            .map(|g| g.id)
            .collect()
    }

    /// Audits the pool's structural invariants (the `audit` feature's
    /// periodic sweep calls this):
    ///
    /// * every listed id resolves to an unharvested gSB filed under its own
    ///   `n_chls` class, with no duplicates across lists;
    /// * conversely, every unharvested gSB is listed (available ⇔ not
    ///   `in_use`), so harvest/destroy bookkeeping conserves gSBs.
    ///
    /// All checks are `debug_assert!`s; in release builds this is a no-op.
    #[cfg(feature = "audit")]
    pub fn audit_invariants(&self) {
        let mut listed = std::collections::BTreeSet::new();
        for (li, list) in self.lists.iter().enumerate() {
            for id in list {
                debug_assert!(listed.insert(*id), "{id} appears on two availability lists");
                match self.gsbs.get(id) {
                    None => debug_assert!(false, "{id} is listed but not in the pool map"),
                    Some(g) => {
                        debug_assert!(!g.in_use(), "{id} is listed available while harvested");
                        debug_assert!(
                            g.n_chls() == li + 1,
                            "{id} with n_chls {} filed under class {}",
                            g.n_chls(),
                            li + 1
                        );
                    }
                }
            }
        }
        for (id, g) in &self.gsbs {
            debug_assert!(
                g.in_use() || listed.contains(id),
                "{id} is unharvested but missing from the availability lists"
            );
        }
    }

    /// Removes an *available* gSB from the pool entirely (destroy path of
    /// reclamation), returning it. Returns `None` if the gSB is currently
    /// harvested or unknown.
    pub fn destroy_available(&mut self, id: GsbId) -> Option<GhostSuperblock> {
        let gsb = self.gsbs.get(&id)?;
        if gsb.in_use() {
            return None;
        }
        let li = gsb.n_chls() - 1;
        self.lists[li].retain(|g| *g != id);
        self.gsbs.remove(&id)
    }

    /// Removes a *harvested* gSB once its blocks have been migrated (lazy
    /// reclamation completion). Returns `None` if the gSB is unknown.
    pub fn destroy_harvested(&mut self, id: GsbId) -> Option<GhostSuperblock> {
        let gsb = self.gsbs.get(&id)?;
        if !gsb.in_use() {
            return None;
        }
        self.gsbs.remove(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(channel: u16, n: u32) -> Vec<BlockAddr> {
        (0..n)
            .map(|b| BlockAddr {
                channel: ChannelId(channel),
                chip: 0,
                block: b,
            })
            .collect()
    }

    fn pool() -> GsbPool {
        GsbPool::new(8)
    }

    #[test]
    fn create_inserts_at_head() {
        let mut p = pool();
        let a = p.create(VssdId(0), vec![ChannelId(0)], blocks(0, 4));
        let b = p.create(VssdId(0), vec![ChannelId(1)], blocks(1, 4));
        assert_eq!(p.available_with(1), 2);
        // Head insertion: harvesting takes the newest (b) first.
        let got = p.harvest(VssdId(1), 1).unwrap();
        assert_eq!(got, b);
        assert_eq!(p.harvest(VssdId(1), 1).unwrap(), a);
    }

    #[test]
    fn harvest_prefers_exact_then_smaller_then_larger() {
        let mut p = pool();
        let one = p.create(VssdId(0), vec![ChannelId(0)], blocks(0, 4));
        let three = p.create(
            VssdId(0),
            vec![ChannelId(1), ChannelId(2), ChannelId(3)],
            blocks(1, 12),
        );
        // Want 2: no exact → smaller (1) first.
        assert_eq!(p.harvest(VssdId(1), 2).unwrap(), one);
        // Want 2 again: only larger (3) remains.
        assert_eq!(p.harvest(VssdId(1), 2).unwrap(), three);
        assert!(p.harvest(VssdId(1), 2).is_err());
    }

    #[test]
    fn harvest_skips_own_gsbs() {
        let mut p = pool();
        p.create(VssdId(0), vec![ChannelId(0)], blocks(0, 4));
        assert_eq!(p.harvest(VssdId(0), 1), Err(HarvestError::NoneAvailable));
        assert!(p.harvest(VssdId(1), 1).is_ok());
    }

    #[test]
    fn harvest_sets_metadata() {
        let mut p = pool();
        let id = p.create(VssdId(0), vec![ChannelId(0)], blocks(0, 4));
        let got = p.harvest(VssdId(2), 1).unwrap();
        assert_eq!(got, id);
        let g = p.get(id).unwrap();
        assert!(g.in_use());
        assert_eq!(g.harvester, Some(VssdId(2)));
        assert_eq!(g.home, VssdId(0));
        assert_eq!(p.available_total(), 0);
    }

    #[test]
    fn destroy_available_only_when_unharvested() {
        let mut p = pool();
        let id = p.create(VssdId(0), vec![ChannelId(0)], blocks(0, 4));
        assert!(p.destroy_available(id).is_some());
        assert_eq!(p.available_total(), 0);

        let id2 = p.create(VssdId(0), vec![ChannelId(0)], blocks(0, 4));
        p.harvest(VssdId(1), 1).unwrap();
        assert!(p.destroy_available(id2).is_none());
        assert!(p.destroy_harvested(id2).is_some());
        assert!(p.get(id2).is_none());
    }

    #[test]
    fn of_home_lists_all_states() {
        let mut p = pool();
        let a = p.create(VssdId(0), vec![ChannelId(0)], blocks(0, 4));
        let b = p.create(VssdId(0), vec![ChannelId(1)], blocks(1, 4));
        let _c = p.create(VssdId(1), vec![ChannelId(2)], blocks(2, 4));
        p.harvest(VssdId(1), 1).unwrap();
        assert_eq!(p.of_home(VssdId(0)), vec![a, b]);
    }

    #[test]
    fn rotate_block_stripes() {
        let mut g = GhostSuperblock::new(
            GsbId(0),
            VssdId(0),
            vec![ChannelId(0), ChannelId(1)],
            vec![
                BlockAddr {
                    channel: ChannelId(0),
                    chip: 0,
                    block: 0,
                },
                BlockAddr {
                    channel: ChannelId(1),
                    chip: 0,
                    block: 0,
                },
            ],
        );
        let a = g.rotate_block();
        let b = g.rotate_block();
        let c = g.rotate_block();
        assert_ne!(a.channel, b.channel);
        assert_eq!(a, c);
        assert_eq!(g.n_chls(), 2);
        assert_eq!(g.capacity_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_channels_panics() {
        let _ = GhostSuperblock::new(GsbId(0), VssdId(0), vec![], blocks(0, 1));
    }
}
