//! SSD virtualization layer for the FleetIO reproduction.
//!
//! This crate implements the paper's storage substrate on top of the
//! [`fleetio_flash`] device simulator:
//!
//! * [`request`] — tenant I/O requests and priority levels,
//! * [`vssd`] — virtual SSD (vSSD) configuration: channel allocation,
//!   isolation mode, SLOs,
//! * [`token_bucket`] / [`stride`] — the software-isolation machinery the
//!   paper compares against (token-bucket rate limiting and stride
//!   scheduling),
//! * [`gsb`] — the *ghost superblock* abstraction (§3.6): harvestable
//!   superblocks tracked in per-`n_chls` lists, with create / harvest /
//!   reclaim operations,
//! * [`hbt`] — the Harvested Block Table (§3.7): one bit per physical
//!   block distinguishing regular from harvested/reclaimed blocks so GC can
//!   prioritize them,
//! * [`admission`] — admission control for RL actions (§3.5): batching,
//!   Make_Harvestable-first reordering, provider policies, contention
//!   ranking,
//! * [`engine`] — the multi-tenant discrete-event engine tying everything
//!   together: per-channel priority dispatch, FTL mapping, superblock
//!   append, garbage collection with harvested-block priority, and
//!   per-vSSD window statistics.
//!
//! The paper implements the gSB pool with lock-free linked lists for
//! concurrency on the device; the simulation here is a single-threaded
//! discrete-event model, so the pool uses plain indexed lists with identical
//! ordering semantics (insert at head, best-fit search smaller-first).

pub mod admission;
pub mod engine;
pub mod gsb;
pub mod hbt;
pub mod request;
pub mod stride;
pub mod token_bucket;
pub mod vssd;

pub use engine::Engine;
pub use gsb::{GsbId, GsbPool};
pub use request::{IoOp, IoRequest, Priority, RequestId};
pub use vssd::{IsolationMode, VssdConfig, VssdId};
