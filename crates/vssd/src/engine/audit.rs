//! Runtime invariant sweeps for the engine (the `audit` cargo feature).
//!
//! Every event dispatched by [`Engine::run_until`] is fed to a
//! [`fleetio_des::audit::SimAuditor`] (event-time monotonicity), and every
//! [`SWEEP_INTERVAL`] events the engine runs a full structural sweep over
//! the cross-crate bookkeeping that no single method can see end to end:
//!
//! * **Free-block accounting** — per chip, the device's free list plus the
//!   engine's registered-block lists must census to the full geometry.
//!   This is the count the §3.4 GC trigger (`gc_free_threshold`, 20%)
//!   reads via `free_fraction()`, so drift here silently breaks GC timing.
//! * **Block registry consistency** — `block_meta` and `chip_blocks` hold
//!   exactly the same blocks, each filed under its own chip, each in a
//!   non-free device phase, and each `gsb` back-reference resolves.
//! * **gSB harvest conservation** — the pool's `harvester` fields and the
//!   per-vSSD `harvested` lists are two views of one relation; a gSB is
//!   harvested by exactly the vSSD that lists it (§3.6).
//!
//! Checks are `debug_assert!`s: release builds with the feature enabled
//! still skip them, and default builds do not compile this module at all.

use fleetio_flash::block::BlockPhase;

use super::Engine;

/// Events between structural sweeps. Sweeps are O(blocks + gSBs); every
/// 256 events keeps them well under timing noise for tiny-scale tests
/// while still catching drift long before a run completes.
pub const SWEEP_INTERVAL: u64 = 256;

impl Engine {
    /// Feeds one dispatched event to the auditor and runs the periodic
    /// structural sweep when due. Called from `run_until` after the event
    /// handler returns, with `self.now` at the event's timestamp.
    pub(crate) fn audit_event(&mut self) {
        self.auditor.observe_event(self.now);
        if self.auditor.sweep_due(SWEEP_INTERVAL) {
            self.audit_sweep();
            self.auditor.note_sweep();
        }
    }

    /// Number of (events, sweeps) the auditor has recorded — lets tests
    /// assert that auditing actually ran.
    pub fn audit_counts(&self) -> (u64, u64) {
        (self.auditor.events_observed(), self.auditor.sweeps())
    }

    /// Runs the full structural sweep immediately. `run_until` calls this
    /// periodically; tests may call it at any quiescent point.
    pub fn audit_sweep(&self) {
        self.device.audit_invariants();
        self.pool.audit_invariants();
        self.audit_block_registry();
        self.audit_gsb_conservation();
    }

    /// Free-block accounting and `block_meta`/`chip_blocks` agreement.
    fn audit_block_registry(&self) {
        let f = &self.cfg.flash;
        let per_chip = f.blocks_per_chip as usize;
        let chips = usize::from(f.chips_per_channel);
        let mut registered_total = 0usize;
        for ch in 0..f.channels {
            for chip in 0..f.chips_per_channel {
                let registered = self.chip_blocks[self.chip_slot(ch, chip)].len();
                registered_total += registered;
                let free = self
                    .device
                    .chip(fleetio_flash::addr::ChannelId(ch), chip)
                    .free_count();
                debug_assert!(
                    free + registered == per_chip,
                    "chip ({ch}, {chip}): {free} free + {registered} registered != {per_chip} \
                     blocks — the count behind the {}% GC trigger has drifted",
                    self.cfg.gc_free_threshold * 100.0
                );
            }
        }
        debug_assert!(
            registered_total == self.n_block_meta,
            "{registered_total} blocks in chip_blocks but {} block_meta entries",
            self.n_block_meta
        );
        for (slot, list) in self.chip_blocks.iter().enumerate() {
            let (ch, chip) = ((slot / chips) as u16, (slot % chips) as u16);
            for blk in list {
                debug_assert!(
                    (blk.channel.0, blk.chip) == (ch, chip),
                    "{blk:?} filed under chip ({ch}, {chip})"
                );
                debug_assert!(
                    self.device
                        .chip(blk.channel, blk.chip)
                        .block(blk.block)
                        .phase()
                        != BlockPhase::Free,
                    "{blk:?} is registered as allocated but free on the device"
                );
                let meta = self.block_meta_get(*blk);
                debug_assert!(
                    meta.is_some(),
                    "{blk:?} is in chip_blocks but has no block_meta"
                );
                if let Some(gsb) = meta.and_then(|m| m.gsb) {
                    debug_assert!(
                        self.pool.get(gsb).is_some(),
                        "{blk:?} references {gsb} which is not in the pool"
                    );
                }
            }
        }
    }

    /// Every gSB in a vSSD's harvested (stripe) list must be marked
    /// harvested *by that vSSD* in the pool, and no gSB may sit in two
    /// lists. The pool may mark more gSBs harvested than the lists claim:
    /// lazy reclamation (§3.6) retires a gSB from its harvester's stripe
    /// while the pool keeps `harvester` set until GC empties its blocks
    /// and `destroy_emptied_gsb` removes it.
    fn audit_gsb_conservation(&self) {
        let mut claimed = std::collections::BTreeSet::new();
        for v in &self.vssds {
            for id in &v.harvested {
                debug_assert!(
                    claimed.insert(*id),
                    "{id} appears in two vSSDs' harvested lists"
                );
                match self.pool.get(*id) {
                    None => {
                        debug_assert!(false, "{} lists {id} which is not in the pool", v.cfg.id)
                    }
                    Some(g) => debug_assert!(
                        g.harvester == Some(v.cfg.id),
                        "{} lists {id} but the pool says harvester={:?}",
                        v.cfg.id,
                        g.harvester
                    ),
                }
            }
        }
        let pool_harvested = self.pool.harvested_ids();
        debug_assert!(
            pool_harvested.is_superset(&claimed),
            "vSSDs claim harvested gSBs the pool does not mark harvested: \
             claimed {claimed:?}, pool {pool_harvested:?}"
        );
    }
}
