//! Per-channel dispatch: priority levels, stride scheduling, token buckets.

use fleetio_des::{Handle, SimTime};
use fleetio_flash::addr::ChannelId;

use crate::request::CompletedRequest;

use super::{Engine, Ev, GrantOp, PageOp};

/// High bit of a `PageDone` tag marks a GC op (low bits = GC job handle).
const GC_OP_BIT: u64 = 1 << 63;

/// `PageDone` tag meaning "no attached request or GC job". Slab handles
/// never collide with it: their slot half is never `u32::MAX`.
const NONE_TAG: u64 = u64::MAX;

/// Bus-grant granularity for time-sliced low-priority transfers. Real
/// controllers arbitrate the channel bus in sub-page units, which is what
/// keeps a bulk transfer from head-of-line-blocking a latency-critical
/// request for a whole page time.
const GRANT_BYTES: u64 = 4096;

impl Engine {
    /// Packs a page op's owner into a `PageDone` tag: request handle bits,
    /// GC job handle bits with [`GC_OP_BIT`] set, or [`NONE_TAG`].
    fn page_done_tag(op: &PageOp) -> u64 {
        if let Some(h) = op.req {
            let bits = h.to_bits();
            debug_assert!(bits & GC_OP_BIT == 0, "request handle collides with GC bit");
            bits
        } else if let Some(g) = op.gc {
            let bits = g.to_bits();
            debug_assert!(bits & GC_OP_BIT == 0, "gc handle collides with GC bit");
            GC_OP_BIT | bits
        } else {
            NONE_TAG
        }
    }

    /// Dispatches queued page ops on channel `ch` while in-flight slots
    /// remain, honouring priority levels, stride shares and token buckets.
    pub(crate) fn try_dispatch(&mut self, ch: u16) {
        // When a high-priority tenant is active on this channel, keep one
        // in-flight slot in reserve for it: combined with time-sliced bus
        // grants this bounds both the bus wait (one grant) and the number
        // of concurrent low-priority chip programs a latency-critical read
        // can collide with. Computed lazily: most calls select nothing (or
        // only rank-0 ops) and never need the membership scan.
        let mut high_present: Option<bool> = None;
        let low_cap = self.cfg.dispatch_ahead.saturating_sub(1).max(1);
        loop {
            if self.chans[usize::from(ch)].in_flight >= self.cfg.dispatch_ahead {
                return;
            }
            match self.select_op(ch) {
                Some((vssd_idx, rank)) => {
                    let high = rank > 0
                        && *high_present.get_or_insert_with(|| {
                            self.chans[usize::from(ch)].stride_members().any(|idx| {
                                self.vssds[idx].priority == crate::request::Priority::High
                            })
                        });
                    if high && self.chans[usize::from(ch)].in_flight >= low_cap {
                        self.maybe_schedule_token_retry(ch);
                        return;
                    }
                    let op = self.chans[usize::from(ch)].queues[vssd_idx][rank]
                        .pop_front()
                        .expect("selected queue is non-empty");
                    self.chans[usize::from(ch)].pending[rank] -= 1;
                    self.issue_op(ch, op, rank);
                }
                None => {
                    self.maybe_schedule_token_retry(ch);
                    return;
                }
            }
        }
    }

    /// Picks the next `(vssd_idx, priority_rank)` to serve on `ch`:
    /// highest non-empty priority level first, stride scheduling among the
    /// vSSDs runnable at that level, token buckets gating runnability.
    fn select_op(&mut self, ch: u16) -> Option<(usize, usize)> {
        let now = self.now;
        let mut runnable = std::mem::take(&mut self.runnable_buf);
        let mut result = None;
        for rank in 0..3 {
            if self.chans[usize::from(ch)].pending[rank] == 0 {
                continue;
            }
            runnable.clear();
            for idx in 0..self.vssds.len() {
                let (head_bytes, is_gc) = {
                    let q = &self.chans[usize::from(ch)].queues[idx][rank];
                    match q.front() {
                        Some(op) => (op.bytes, op.gc.is_some()),
                        None => continue,
                    }
                };
                // GC ops bypass tenant rate limits (internal traffic).
                let ok = is_gc
                    || match self.vssds[idx].bucket.as_mut() {
                        Some(bucket) => bucket.would_allow(now, head_bytes),
                        None => true,
                    };
                if ok {
                    runnable.push(idx);
                }
            }
            if runnable.is_empty() {
                // Everyone at this level is token-blocked; lower levels may
                // still proceed (they are different vSSDs).
                continue;
            }
            let chan = &mut self.chans[usize::from(ch)];
            // A `None` pick (nothing registered) aborts selection entirely,
            // matching the historical `?` behaviour.
            result = chan
                .stride
                .pick(runnable.iter().copied())
                .map(|pick| (pick, rank));
            break;
        }
        runnable.clear();
        self.runnable_buf = runnable;
        result
    }

    /// Issues one page op on the device and schedules its completion.
    ///
    /// Low-priority multi-grant transfers are time-sliced: the bus is
    /// booked one [`GRANT_BYTES`] grant at a time, so a high-priority op
    /// arriving mid-transfer waits at most one grant rather than a full
    /// page time.
    fn issue_op(&mut self, ch: u16, op: PageOp, rank: usize) {
        let now = self.now;
        if op.gc.is_none() {
            if let Some(bucket) = self.vssds[op.vssd].bucket.as_mut() {
                // Selection verified affordability; consume now.
                let _ = bucket.try_take(now, op.bytes);
            }
        }
        let channel = ChannelId(ch);
        let tag = Self::page_done_tag(&op);
        self.chans[usize::from(ch)].in_flight += 1;
        let vssd_id = self.vssds[op.vssd].cfg.id.0;
        if self.obs_on {
            if let Some(h) = op.req {
                let ext_id = self.reqs[h].ext_id;
                self.obs.record(fleetio_obs::ObsEvent::ChipIssue {
                    at: now,
                    req: ext_id,
                    vssd: vssd_id,
                    channel: ch,
                    chip: op.chip,
                    read: op.read,
                });
            }
        }
        if (rank == crate::request::Priority::Low.rank() || op.gc.is_some())
            && op.bytes > GRANT_BYTES
        {
            // Time-sliced path.
            if let Some(h) = op.req {
                if let Some(r) = self.reqs.get_mut(h) {
                    r.first_start = Some(r.first_start.map_or(now, |t| t.min(now)));
                }
            }
            let grant = GrantOp {
                vssd: op.vssd,
                read: op.read,
                chip: op.chip,
                tag,
                gc: op.gc.is_some(),
                remaining: op.bytes,
            };
            let t0 = if op.read {
                // Cell read first; transfers start when the data is in the
                // chip register.
                let occupy = self.device.chip_read_occupy(now, channel, op.chip);
                if self.obs_on {
                    self.obs.record(fleetio_obs::ObsEvent::NandOp {
                        start: occupy.start,
                        end: occupy.end,
                        vssd: vssd_id,
                        channel: ch,
                        chip: op.chip,
                        kind: fleetio_obs::NandKind::ChipOccupy,
                        gc: grant.gc,
                        bytes: 0,
                    });
                }
                occupy.end
            } else {
                now
            };
            let h = self.grants.insert(grant);
            self.events.push(t0, Ev::Grant { ch, h });
            return;
        }
        let times = match (op.read, op.gc.is_some()) {
            (true, false) if rank == 0 => {
                // High-priority reads use program/erase suspend.
                self.device
                    .read_page_preempting(now, channel, op.chip, op.bytes)
            }
            (true, false) => self.device.read_page(now, channel, op.chip, op.bytes),
            (false, false) => self.device.write_page(now, channel, op.chip, op.bytes),
            (true, true) => self.device.gc_read_page(now, channel, op.chip, op.bytes),
            (false, true) => self.device.gc_write_page(now, channel, op.chip, op.bytes),
        };
        if self.obs_on {
            self.obs.record(fleetio_obs::ObsEvent::NandOp {
                start: times.start,
                end: times.end,
                vssd: vssd_id,
                channel: ch,
                chip: op.chip,
                kind: if op.read {
                    fleetio_obs::NandKind::Read
                } else {
                    fleetio_obs::NandKind::Program
                },
                gc: op.gc.is_some(),
                bytes: op.bytes,
            });
        }
        if let Some(h) = op.req {
            if let Some(r) = self.reqs.get_mut(h) {
                r.first_start = Some(match r.first_start {
                    Some(t) => t.min(times.start),
                    None => times.start,
                });
            }
        }
        self.events.push(times.end, Ev::PageDone { ch, tag });
    }

    /// Advances a time-sliced transfer by one bus grant; finishes the op
    /// (program for writes) when the last grant lands.
    pub(crate) fn process_grant(&mut self, ch: u16, h: Handle) {
        let channel = ChannelId(ch);
        let op = self.grants[h];
        let vssd_id = self.vssds[op.vssd].cfg.id.0;
        if op.remaining == 0 {
            self.grants.remove(h);
            if op.read {
                self.events.push(self.now, Ev::PageDone { ch, tag: op.tag });
            } else {
                let p = self.device.chip_program_occupy(self.now, channel, op.chip);
                if self.obs_on {
                    self.obs.record(fleetio_obs::ObsEvent::NandOp {
                        start: p.start,
                        end: p.end,
                        vssd: vssd_id,
                        channel: ch,
                        chip: op.chip,
                        kind: fleetio_obs::NandKind::ChipOccupy,
                        gc: op.gc,
                        bytes: 0,
                    });
                }
                self.events.push(p.end, Ev::PageDone { ch, tag: op.tag });
            }
            return;
        }
        let bytes = GRANT_BYTES.min(op.remaining);
        let g = self
            .device
            .bus_grant(self.now, channel, bytes, op.read, op.gc);
        if self.obs_on {
            self.obs.record(fleetio_obs::ObsEvent::NandOp {
                start: g.start,
                end: g.end,
                vssd: vssd_id,
                channel: ch,
                chip: op.chip,
                kind: fleetio_obs::NandKind::BusGrant,
                gc: op.gc,
                bytes,
            });
        }
        self.grants[h].remaining -= bytes;
        self.events.push(g.end, Ev::Grant { ch, h });
    }

    /// Handles a page-op completion: frees the slot, finishes the request
    /// if this was its last op, and keeps the channel busy.
    pub(crate) fn process_page_done(&mut self, ch: u16, tag: u64) {
        self.chans[usize::from(ch)].in_flight -= 1;
        if tag == NONE_TAG {
            self.try_dispatch(ch);
            return;
        }
        if tag & GC_OP_BIT != 0 {
            self.process_gc_op_done(Handle::from_bits(tag & !GC_OP_BIT));
            self.try_dispatch(ch);
            return;
        }
        let h = Handle::from_bits(tag);
        let finished = {
            let r = self.reqs.get_mut(h).expect("page op for unknown request");
            r.remaining -= 1;
            r.remaining == 0
        };
        if finished {
            let r = self.reqs.remove(h);
            let idx = r.vssd_idx as usize;
            let vssd = self.vssds[idx].cfg.id;
            let completion = self.now;
            let record = CompletedRequest {
                id: crate::request::RequestId(r.ext_id),
                vssd,
                op: r.op,
                offset: r.offset,
                len: r.len,
                arrival: r.arrival,
                service_start: r.first_start.unwrap_or(r.arrival),
                completion,
            };
            let latency = record.latency();
            let violated = self.vssds[idx]
                .cfg
                .slo
                .map(|slo| latency > slo)
                .unwrap_or(false);
            self.vssds[idx].window.record_request(
                r.op.is_read(),
                r.len,
                latency,
                record.queue_delay(),
                violated,
            );
            let cum = &mut self.vssds[idx].cumulative;
            cum.bytes += r.len;
            cum.requests += 1;
            if violated {
                cum.slo_violations += 1;
            }
            cum.latency.record(latency);
            if self.obs_on {
                self.obs.record(fleetio_obs::ObsEvent::RequestComplete {
                    at: completion,
                    req: r.ext_id,
                    vssd: vssd.0,
                    read: r.op.is_read(),
                    bytes: r.len,
                    arrival: r.arrival,
                    service_start: record.service_start,
                });
            }
            self.completed.push(record);
        }
        self.try_dispatch(ch);
    }

    /// If ops are queued but all are token-blocked, schedules a retry at
    /// the earliest token-availability time.
    fn maybe_schedule_token_retry(&mut self, ch: u16) {
        if self.chans[usize::from(ch)].retry_pending {
            return;
        }
        if self.chans[usize::from(ch)].pending.iter().all(|p| *p == 0) {
            return;
        }
        let now = self.now;
        let mut earliest: Option<SimTime> = None;
        for idx in 0..self.vssds.len() {
            let mut head: Option<u64> = None;
            for rank in 0..3 {
                if let Some(op) = self.chans[usize::from(ch)].queues[idx][rank].front() {
                    head = Some(op.bytes);
                    break;
                }
            }
            let Some(bytes) = head else { continue };
            if let Some(bucket) = self.vssds[idx].bucket.as_mut() {
                let at = bucket.ready_at(now, bytes);
                earliest = Some(match earliest {
                    Some(t) => t.min(at),
                    None => at,
                });
            }
        }
        if let Some(at) = earliest {
            // Guard against a zero-delay livelock.
            let at = at.max(now + fleetio_des::SimDuration::from_micros(1));
            self.chans[usize::from(ch)].retry_pending = true;
            if self.obs_on {
                self.obs.record(fleetio_obs::ObsEvent::Throttle {
                    at: now,
                    channel: ch,
                    until: at,
                });
            }
            self.events.push(at, Ev::TokenRetry { ch });
        }
    }
}
