//! Per-vSSD runtime state inside the engine.

use std::collections::BTreeMap;

use fleetio_des::window::WindowStats;
use fleetio_des::LatencyHistogram;
use fleetio_flash::addr::{BlockAddr, ChannelId, Ppa};

use crate::gsb::GsbId;
use crate::request::Priority;
use crate::token_bucket::TokenBucket;
use crate::vssd::{VssdConfig, VssdId};

/// One slot of a vSSD's write-striping rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StripeTarget {
    /// Append to the vSSD's own blocks on this home channel.
    Home(ChannelId),
    /// Append into a harvested ghost superblock (one slot per gSB channel).
    Gsb(GsbId),
}

/// Metadata the engine keeps per allocated physical block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BlockMeta {
    /// The vSSD whose channel resources back the block.
    pub resource_owner: VssdId,
    /// The vSSD whose logical data the block holds (differs from
    /// `resource_owner` for harvested blocks).
    pub data_owner: VssdId,
    /// The ghost superblock containing the block, if any.
    pub gsb: Option<GsbId>,
}

/// Lifetime-cumulative per-vSSD counters (across all windows).
#[derive(Debug, Clone, Default)]
pub struct VssdCumulative {
    /// Host bytes completed (reads + writes).
    pub bytes: u64,
    /// Requests completed.
    pub requests: u64,
    /// Requests that violated the SLO.
    pub slo_violations: u64,
    /// Latency distribution over the whole run.
    pub latency: LatencyHistogram,
}

/// Full runtime state of one vSSD.
#[derive(Debug)]
pub(crate) struct VssdState {
    pub cfg: VssdConfig,
    /// LPA (page units) → physical page mapping.
    pub map: BTreeMap<u64, Ppa>,
    /// Open append block per `(channel, chip)` on home channels.
    pub open_blocks: BTreeMap<(u16, u16), BlockAddr>,
    /// Write-striping rotation (home channels + harvested gSB slots).
    pub stripe: Vec<StripeTarget>,
    pub stripe_pos: usize,
    /// Ghost superblocks currently harvested and active for writes,
    /// in acquisition order (released LIFO).
    pub harvested: Vec<GsbId>,
    /// Current I/O priority (the `Set_Priority` action's target).
    pub priority: Priority,
    /// Software-isolation rate limiter, if configured.
    pub bucket: Option<TokenBucket>,
    /// Current observation-window accumulator.
    pub window: WindowStats,
    /// Number of GC jobs currently running on this vSSD's blocks.
    pub gc_active: u32,
    /// Number of logical pages currently mapped.
    pub mapped_pages: u64,
    /// Lifetime counters.
    pub cumulative: VssdCumulative,
}

impl VssdState {
    pub(crate) fn new(cfg: VssdConfig) -> Self {
        let bucket = cfg
            .rate_limit
            .map(|rate| TokenBucket::new(rate, rate * 0.05));
        let stripe = cfg
            .channels
            .iter()
            .map(|&c| StripeTarget::Home(c))
            .collect();
        VssdState {
            cfg,
            map: BTreeMap::new(),
            open_blocks: BTreeMap::new(),
            stripe,
            stripe_pos: 0,
            harvested: Vec::new(),
            priority: Priority::default(),
            bucket,
            window: WindowStats::new(),
            gc_active: 0,
            mapped_pages: 0,
            cumulative: VssdCumulative::default(),
        }
    }

    /// Rebuilds the striping rotation from home channels plus one slot per
    /// channel of each active harvested gSB.
    pub(crate) fn rebuild_stripe(&mut self, gsb_channels: impl Fn(GsbId) -> usize) {
        let mut stripe: Vec<StripeTarget> = self
            .cfg
            .channels
            .iter()
            .map(|&c| StripeTarget::Home(c))
            .collect();
        for &id in &self.harvested {
            for _ in 0..gsb_channels(id) {
                stripe.push(StripeTarget::Gsb(id));
            }
        }
        self.stripe = stripe;
        self.stripe_pos = 0;
    }

    /// Whether this vSSD is in GC (the paper's `In_GC` RL state).
    pub(crate) fn in_gc(&self) -> bool {
        self.gc_active > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> VssdConfig {
        VssdConfig::hardware(VssdId(0), vec![ChannelId(0), ChannelId(1)])
    }

    #[test]
    fn stripe_starts_on_home_channels() {
        let st = VssdState::new(cfg());
        assert_eq!(
            st.stripe,
            vec![
                StripeTarget::Home(ChannelId(0)),
                StripeTarget::Home(ChannelId(1))
            ]
        );
        assert!(st.bucket.is_none());
    }

    #[test]
    fn rate_limit_creates_bucket() {
        let c = cfg().with_rate_limit(1e6);
        let st = VssdState::new(c);
        assert!(st.bucket.is_some());
    }

    #[test]
    fn rebuild_stripe_adds_gsb_slots() {
        let mut st = VssdState::new(cfg());
        st.harvested.push(GsbId(5));
        st.rebuild_stripe(|_| 2);
        assert_eq!(st.stripe.len(), 4);
        assert_eq!(st.stripe[2], StripeTarget::Gsb(GsbId(5)));
    }

    #[test]
    fn in_gc_tracks_counter() {
        let mut st = VssdState::new(cfg());
        assert!(!st.in_gc());
        st.gc_active = 2;
        assert!(st.in_gc());
    }
}
