//! Per-vSSD runtime state inside the engine.

use fleetio_des::window::WindowStats;
use fleetio_des::LatencyHistogram;
use fleetio_flash::addr::{BlockAddr, ChannelId, Ppa};

use crate::gsb::GsbId;
use crate::request::Priority;
use crate::token_bucket::TokenBucket;
use crate::vssd::{VssdConfig, VssdId};

/// One slot of a vSSD's write-striping rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StripeTarget {
    /// Append to the vSSD's own blocks on this home channel.
    Home(ChannelId),
    /// Append into a harvested ghost superblock (one slot per gSB channel).
    Gsb(GsbId),
}

/// Metadata the engine keeps per allocated physical block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BlockMeta {
    /// The vSSD whose channel resources back the block.
    pub resource_owner: VssdId,
    /// The vSSD whose logical data the block holds (differs from
    /// `resource_owner` for harvested blocks).
    pub data_owner: VssdId,
    /// The ghost superblock containing the block, if any.
    pub gsb: Option<GsbId>,
}

/// The sentinel page index marking an unmapped [`PageMap`] slot (no real
/// page index comes near `u32::MAX`).
const UNMAPPED: u32 = u32::MAX;

/// Dense LPA → PPA mapping table.
///
/// The FTL map is touched once or twice per written page (lookup + insert)
/// and once per read — the single hottest lookup in the engine. A `Vec`
/// indexed by LPA with an in-band "unmapped" sentinel replaces the old
/// `BTreeMap<u64, Ppa>`'s pointer-chasing walk with one array index, and
/// its ~3× per-entry node overhead with 12 bytes per page slot. The table
/// grows geometrically to the highest LPA actually written, so sparse
/// address spaces do not pay for their holes up front.
#[derive(Debug, Default)]
pub(crate) struct PageMap {
    pages: Vec<Ppa>,
}

impl PageMap {
    /// The physical location of `lpa`, if mapped.
    #[inline]
    pub fn get(&self, lpa: u64) -> Option<Ppa> {
        let ppa = *self.pages.get(lpa as usize)?;
        (ppa.page != UNMAPPED).then_some(ppa)
    }

    /// Maps `lpa` to `ppa` (insert or overwrite).
    pub fn set(&mut self, lpa: u64, ppa: Ppa) {
        debug_assert!(ppa.page != UNMAPPED, "real pages never use the sentinel");
        let i = lpa as usize;
        if i >= self.pages.len() {
            let new_len = (i + 1).max(self.pages.len() * 2);
            self.pages.resize(
                new_len,
                Ppa {
                    block: BlockAddr {
                        channel: ChannelId(0),
                        chip: 0,
                        block: 0,
                    },
                    page: UNMAPPED,
                },
            );
        }
        self.pages[i] = ppa;
    }
}

/// Lifetime-cumulative per-vSSD counters (across all windows).
#[derive(Debug, Clone, Default)]
pub struct VssdCumulative {
    /// Host bytes completed (reads + writes).
    pub bytes: u64,
    /// Requests completed.
    pub requests: u64,
    /// Requests that violated the SLO.
    pub slo_violations: u64,
    /// Latency distribution over the whole run.
    pub latency: LatencyHistogram,
}

/// Full runtime state of one vSSD.
#[derive(Debug)]
pub(crate) struct VssdState {
    pub cfg: VssdConfig,
    /// LPA (page units) → physical page mapping.
    pub map: PageMap,
    /// Open append block per device chip slot (`channel × chips + chip`);
    /// `None` until the vSSD first writes there.
    pub open_blocks: Vec<Option<BlockAddr>>,
    /// Write-striping rotation (home channels + harvested gSB slots).
    pub stripe: Vec<StripeTarget>,
    pub stripe_pos: usize,
    /// Ghost superblocks currently harvested and active for writes,
    /// in acquisition order (released LIFO).
    pub harvested: Vec<GsbId>,
    /// Current I/O priority (the `Set_Priority` action's target).
    pub priority: Priority,
    /// Software-isolation rate limiter, if configured.
    pub bucket: Option<TokenBucket>,
    /// Current observation-window accumulator.
    pub window: WindowStats,
    /// Number of GC jobs currently running on this vSSD's blocks.
    pub gc_active: u32,
    /// Number of logical pages currently mapped.
    pub mapped_pages: u64,
    /// Lifetime counters.
    pub cumulative: VssdCumulative,
}

impl VssdState {
    /// Builds the state for one vSSD on a device with `chip_slots` total
    /// chips (`channels × chips_per_channel`).
    pub(crate) fn new(cfg: VssdConfig, chip_slots: usize) -> Self {
        let bucket = cfg
            .rate_limit
            .map(|rate| TokenBucket::new(rate, rate * 0.05));
        let stripe = cfg
            .channels
            .iter()
            .map(|&c| StripeTarget::Home(c))
            .collect();
        VssdState {
            cfg,
            map: PageMap::default(),
            open_blocks: vec![None; chip_slots],
            stripe,
            stripe_pos: 0,
            harvested: Vec::new(),
            priority: Priority::default(),
            bucket,
            window: WindowStats::new(),
            gc_active: 0,
            mapped_pages: 0,
            cumulative: VssdCumulative::default(),
        }
    }

    /// Rebuilds the striping rotation from home channels plus one slot per
    /// channel of each active harvested gSB.
    pub(crate) fn rebuild_stripe(&mut self, gsb_channels: impl Fn(GsbId) -> usize) {
        let mut stripe: Vec<StripeTarget> = self
            .cfg
            .channels
            .iter()
            .map(|&c| StripeTarget::Home(c))
            .collect();
        for &id in &self.harvested {
            for _ in 0..gsb_channels(id) {
                stripe.push(StripeTarget::Gsb(id));
            }
        }
        self.stripe = stripe;
        self.stripe_pos = 0;
    }

    /// Whether this vSSD is in GC (the paper's `In_GC` RL state).
    pub(crate) fn in_gc(&self) -> bool {
        self.gc_active > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> VssdConfig {
        VssdConfig::hardware(VssdId(0), vec![ChannelId(0), ChannelId(1)])
    }

    #[test]
    fn stripe_starts_on_home_channels() {
        let st = VssdState::new(cfg(), 4);
        assert_eq!(
            st.stripe,
            vec![
                StripeTarget::Home(ChannelId(0)),
                StripeTarget::Home(ChannelId(1))
            ]
        );
        assert!(st.bucket.is_none());
        assert!(st.open_blocks.iter().all(Option::is_none));
    }

    #[test]
    fn rate_limit_creates_bucket() {
        let c = cfg().with_rate_limit(1e6);
        let st = VssdState::new(c, 4);
        assert!(st.bucket.is_some());
    }

    #[test]
    fn rebuild_stripe_adds_gsb_slots() {
        let mut st = VssdState::new(cfg(), 4);
        st.harvested.push(GsbId(5));
        st.rebuild_stripe(|_| 2);
        assert_eq!(st.stripe.len(), 4);
        assert_eq!(st.stripe[2], StripeTarget::Gsb(GsbId(5)));
    }

    #[test]
    fn in_gc_tracks_counter() {
        let mut st = VssdState::new(cfg(), 4);
        assert!(!st.in_gc());
        st.gc_active = 2;
        assert!(st.in_gc());
    }

    #[test]
    fn page_map_grows_and_overwrites() {
        let mut m = PageMap::default();
        assert!(m.get(0).is_none());
        assert!(m.get(1_000).is_none());
        let ppa = |page| Ppa {
            block: BlockAddr {
                channel: ChannelId(1),
                chip: 2,
                block: 3,
            },
            page,
        };
        m.set(7, ppa(9));
        assert_eq!(m.get(7), Some(ppa(9)));
        assert!(m.get(6).is_none(), "growth must not fabricate mappings");
        m.set(7, ppa(10));
        assert_eq!(m.get(7), Some(ppa(10)));
        m.set(100_000, ppa(1));
        assert_eq!(m.get(100_000), Some(ppa(1)));
        assert!(m.get(99_999).is_none());
    }
}
