//! Harvesting: gSB creation, harvesting, reclamation, admission batches.
//!
//! RL agents express *target levels* each decision window: how many channels
//! of bandwidth to make harvestable and how many to harvest. The engine
//! reconciles the current gSB state toward those targets, which maps the
//! paper's `Make_Harvestable(gsb_bw)` / `Harvest(gsb_bw)` actions onto
//! idempotent level-setting (issuing the same action twice is a no-op
//! rather than doubling the harvest).

use fleetio_flash::addr::{BlockAddr, ChannelId};

use crate::admission::HarvestAction;
use crate::gsb::GsbId;
use crate::vssd::VssdId;

use super::{Engine, Ev};

impl Engine {
    /// Sets the number of channels of this vSSD's bandwidth that should be
    /// harvestable (the `Make_Harvestable` action, in channel units).
    ///
    /// Creates a new gSB when the target exceeds current offerings (subject
    /// to the 25 % free-block rule) and reclaims gSBs when it shrinks:
    /// unharvested gSBs are destroyed immediately, harvested ones are
    /// reclaimed lazily through GC.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn set_harvestable_target(&mut self, id: VssdId, n_chls: usize) {
        let idx = self.idx(id);
        // The target governs the *available* (unharvested) supply: gSBs
        // already harvested are loans that return through GC, so they do
        // not count against the offer level — otherwise the supply pipeline
        // would stall the moment one gSB is taken. The free-block rules
        // (25 % creation floor, allocation failures) bound total lending.
        let available: usize = self
            .pool
            .of_home(id)
            .iter()
            .filter_map(|g| self.pool.get(*g))
            .filter(|g| !g.in_use())
            .map(|g| g.n_chls())
            .sum();
        if n_chls > available {
            self.create_gsb(idx, n_chls - available);
        } else if n_chls < available {
            self.reclaim_gsbs(id, available - n_chls);
        }
        if n_chls == 0 {
            // A zero offer is a full reclamation signal: stop harvesters
            // from writing into any of this home's in-use gSBs (§3.6 lazy
            // reclamation; GC migrates the remaining data).
            self.reclaim_gsbs(id, usize::MAX);
        }
    }

    /// Sets the number of channels this vSSD should be harvesting *from
    /// others* (the `Harvest` action, in channel units).
    ///
    /// Acquires gSBs from the pool while below target (best-fit per §3.6)
    /// and releases the most recently acquired ones while above it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn set_harvest_target(&mut self, id: VssdId, n_chls: usize) {
        let idx = self.idx(id);
        loop {
            let current: usize = self.vssds[idx]
                .harvested
                .iter()
                .filter_map(|g| self.pool.get(*g))
                .map(|g| g.n_chls())
                .sum();
            if current < n_chls {
                match self.pool.harvest(id, n_chls - current) {
                    Ok(gsb) => {
                        self.vssds[idx].harvested.push(gsb);
                        self.rebuild_stripe_of(idx);
                        if self.obs_on {
                            if let Some(g) = self.pool.get(gsb) {
                                let ev = fleetio_obs::ObsEvent::GsbTransition {
                                    at: self.now,
                                    gsb: gsb.0,
                                    home: g.home.0,
                                    harvester: Some(id.0),
                                    kind: fleetio_obs::GsbKind::Harvested,
                                    channels: g.n_chls() as u16,
                                };
                                self.obs.record(ev);
                            }
                        }
                    }
                    Err(_) => return,
                }
            } else if current > n_chls && !self.vssds[idx].harvested.is_empty() {
                let gsb = self.vssds[idx]
                    .harvested
                    .pop()
                    .expect("branch checked harvested non-empty");
                self.rebuild_stripe_of(idx);
                self.release_harvested_gsb(gsb);
            } else {
                return;
            }
        }
    }

    pub(crate) fn rebuild_stripe_of(&mut self, idx: usize) {
        let pool = &self.pool;
        let chans = |g: GsbId| pool.get(g).map_or(0, |x| x.n_chls());
        self.vssds[idx].rebuild_stripe(chans);
    }

    /// Creates one gSB spanning up to `want_chls` of the vSSD's home
    /// channels, honouring the 25 % free-block rule. No-op when no channel
    /// qualifies.
    fn create_gsb(&mut self, idx: usize, want_chls: usize) {
        let id = self.vssds[idx].cfg.id;
        let chips = self.cfg.flash.chips_per_channel;
        // Candidate home channels, most free blocks first.
        let mut candidates: Vec<(usize, ChannelId)> = self.vssds[idx]
            .cfg
            .channels
            .iter()
            .filter(|&&ch| self.device.min_free_fraction(&[ch]) >= self.cfg.gsb_min_free_fraction)
            .map(|&ch| (self.device.free_blocks(&[ch]), ch))
            .collect();
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let chosen: Vec<ChannelId> = candidates
            .into_iter()
            .take(want_chls)
            .map(|(_, ch)| ch)
            .collect();
        if chosen.is_empty() {
            return;
        }
        // Harvest a fixed number of blocks per channel, striped evenly
        // across the channel's chips (§3.6).
        let per_chip = (self.cfg.gsb_blocks_per_channel / u32::from(chips)).max(1);
        let mut blocks: Vec<BlockAddr> = Vec::new();
        // Interleave channels so the gSB's block rotation stripes writes.
        for round in 0..per_chip {
            for &ch in &chosen {
                for chip in 0..chips {
                    let _ = round;
                    if let Some(blk) = self.device.allocate_block(ch, chip) {
                        blocks.push(blk);
                    }
                }
            }
        }
        if blocks.is_empty() {
            return;
        }
        let n_chosen = chosen.len() as u16;
        let gsb = self.pool.create(id, chosen, blocks.clone());
        if self.obs_on {
            self.obs.record(fleetio_obs::ObsEvent::GsbTransition {
                at: self.now,
                gsb: gsb.0,
                home: id.0,
                harvester: None,
                kind: fleetio_obs::GsbKind::Created,
                channels: n_chosen,
            });
        }
        for blk in blocks {
            self.hbt.mark_harvested(blk);
            self.block_meta_insert(
                blk,
                super::vstate::BlockMeta {
                    resource_owner: id,
                    data_owner: id,
                    gsb: Some(gsb),
                },
            );
            let slot = self.chip_slot(blk.channel.0, blk.chip);
            self.chip_blocks[slot].push(blk);
        }
    }

    /// Reclaims roughly `excess_chls` channels of this home's gSBs:
    /// available ones are destroyed immediately (blocks returned),
    /// harvested ones wait for GC.
    fn reclaim_gsbs(&mut self, home: VssdId, mut excess_chls: usize) {
        // Destroy largest available gSBs first to converge fast.
        let mut avail: Vec<(usize, GsbId)> = self
            .pool
            .of_home(home)
            .into_iter()
            .filter_map(|g| {
                self.pool
                    .get(g)
                    .filter(|x| !x.in_use())
                    .map(|x| (x.n_chls(), g))
            })
            .collect();
        avail.sort_by_key(|(n, _)| std::cmp::Reverse(*n));
        for (n, gsb) in avail {
            if excess_chls == 0 {
                break;
            }
            if let Some(g) = self.pool.destroy_available(gsb) {
                if self.obs_on {
                    self.obs.record(fleetio_obs::ObsEvent::GsbTransition {
                        at: self.now,
                        gsb: gsb.0,
                        home: home.0,
                        harvester: None,
                        kind: fleetio_obs::GsbKind::Destroyed,
                        channels: n as u16,
                    });
                }
                for blk in g.blocks {
                    self.return_gsb_block(blk);
                }
                excess_chls = excess_chls.saturating_sub(n);
            }
        }
        // Remaining excess sits in harvested gSBs: lazy reclamation. Stop
        // the harvester from writing new data into them (retire the gSB
        // from its stripe); the blocks are already HBT-marked, so GC
        // migrates the remaining live data first and destroys the gSB when
        // its last block empties (§3.6 "Reclaiming gSBs").
        if excess_chls > 0 {
            let in_use: Vec<(usize, GsbId, VssdId)> = self
                .pool
                .of_home(home)
                .into_iter()
                .filter_map(|g| self.pool.get(g))
                .filter_map(|g| g.harvester.map(|h| (g.n_chls(), g.id, h)))
                .collect();
            for (n, gsb, harvester) in in_use {
                if excess_chls == 0 {
                    break;
                }
                let idx = self.idx(harvester);
                if self.vssds[idx].harvested.contains(&gsb) {
                    self.retire_gsb_from_stripe(idx, gsb);
                    if self.obs_on {
                        self.obs.record(fleetio_obs::ObsEvent::GsbTransition {
                            at: self.now,
                            gsb: gsb.0,
                            home: home.0,
                            harvester: Some(harvester.0),
                            kind: fleetio_obs::GsbKind::ReclaimRequested,
                            channels: n as u16,
                        });
                    }
                    excess_chls = excess_chls.saturating_sub(n);
                }
            }
        }
    }

    /// Releases a gSB this vSSD was harvesting. Untouched gSBs go straight
    /// back to the home vSSD; written ones become GC-reclaimed zombies.
    fn release_harvested_gsb(&mut self, id: GsbId) {
        if self.obs_on {
            if let Some(g) = self.pool.get(id) {
                let ev = fleetio_obs::ObsEvent::GsbTransition {
                    at: self.now,
                    gsb: id.0,
                    home: g.home.0,
                    harvester: g.harvester.map(|h| h.0),
                    kind: fleetio_obs::GsbKind::Released,
                    channels: g.n_chls() as u16,
                };
                self.obs.record(ev);
            }
        }
        let untouched = self.pool.get(id).is_some_and(|g| {
            g.blocks.iter().all(|b| {
                self.device
                    .chip(b.channel, b.chip)
                    .block(b.block)
                    .written_count()
                    == 0
            })
        });
        if untouched {
            if let Some(g) = self.pool.destroy_harvested(id) {
                for blk in g.blocks {
                    self.return_gsb_block(blk);
                }
            }
        }
        // Otherwise: blocks hold harvester data; GC migrates them (they are
        // HBT-marked) and destroys the gSB when its last block empties.
    }

    /// Returns one never/no-longer-needed gSB block to the device.
    fn return_gsb_block(&mut self, blk: BlockAddr) {
        self.hbt.mark_regular(blk);
        self.block_meta_remove(blk);
        let slot = self.chip_slot(blk.channel.0, blk.chip);
        self.chip_blocks[slot].retain(|b| *b != blk);
        self.device.release_block(blk);
    }

    /// Destroys a harvested gSB whose last block was collected.
    pub(crate) fn destroy_emptied_gsb(&mut self, id: GsbId) {
        if self.obs_on {
            if let Some(g) = self.pool.get(id) {
                let ev = fleetio_obs::ObsEvent::GsbTransition {
                    at: self.now,
                    gsb: id.0,
                    home: g.home.0,
                    harvester: g.harvester.map(|h| h.0),
                    kind: fleetio_obs::GsbKind::Destroyed,
                    channels: g.n_chls() as u16,
                };
                self.obs.record(ev);
            }
        }
        if let Some(g) = self.pool.get(id) {
            if let Some(harvester) = g.harvester {
                let idx = self.idx(harvester);
                if self.vssds[idx].harvested.contains(&id) {
                    self.vssds[idx].harvested.retain(|x| *x != id);
                    self.rebuild_stripe_of(idx);
                }
                self.pool.destroy_harvested(id);
            } else {
                self.pool.destroy_available(id);
            }
        }
    }

    /// Executes one admission batch (§3.5) and schedules the next tick.
    pub(crate) fn process_admission_tick(&mut self) {
        let supply = self.pool.available_channels_total();
        // Sorted by id (vssd construction order is arbitrary) so
        // `drain_batch` can binary-search its per-vSSD holdings.
        let mut holdings: Vec<(VssdId, usize)> = self
            .vssds
            .iter()
            .map(|v| (v.cfg.id, self.pool.harvested_channels_by(v.cfg.id)))
            .collect();
        holdings.sort_unstable_by_key(|(id, _)| *id);
        let ch_bw = self.channel_peak_bytes_per_sec();
        let batch = self.admission.drain_batch(supply, &holdings, ch_bw);
        // Actions update the persistent level targets; afterwards every
        // vSSD is reconciled toward its targets, so a gSB exhausted
        // mid-window is replaced at the next 50 ms tick without the agent
        // having to re-issue its action (the actions are *levels*, §3.3.2).
        for action in batch {
            match action {
                HarvestAction::MakeHarvestable {
                    vssd,
                    bytes_per_sec,
                } => {
                    let target = self.channels_for_bandwidth(bytes_per_sec);
                    let i = self.idx(vssd);
                    self.harvest_targets[i].get_or_insert((0, 0)).1 = target;
                }
                HarvestAction::Harvest {
                    vssd,
                    bytes_per_sec,
                } => {
                    let target = self.channels_for_bandwidth(bytes_per_sec);
                    let i = self.idx(vssd);
                    self.harvest_targets[i].get_or_insert((0, 0)).0 = target;
                }
            }
        }
        let targets: Vec<(VssdId, usize, usize)> = self
            .vssds
            .iter()
            .enumerate()
            .filter_map(|(i, v)| self.harvest_targets[i].map(|(h, m)| (v.cfg.id, h, m)))
            .collect();
        for (id, harvest, make) in targets {
            self.set_harvestable_target(id, make);
            self.set_harvest_target(id, harvest);
        }
        let next = self.now + self.admission.batch_interval();
        self.events.push(next, Ev::AdmissionTick);
    }
}
