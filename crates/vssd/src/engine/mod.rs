//! The multi-tenant vSSD simulation engine.
//!
//! [`Engine`] composes the flash device, per-channel dispatchers, per-vSSD
//! FTL state, the gSB pool, the Harvested Block Table, and admission
//! control into one discrete-event simulation. Drivers (baseline policies or
//! FleetIO's RL agents) interact with it through four surfaces:
//!
//! 1. **I/O**: [`Engine::submit`] requests, [`Engine::run_until`] advances
//!    simulated time, [`Engine::drain_completed`] collects results.
//! 2. **Scheduling**: [`Engine::set_priority`] (the `Set_Priority` action).
//! 3. **Harvesting**: [`Engine::submit_action`] routes `Harvest` /
//!    `Make_Harvestable` actions through admission control;
//!    [`Engine::set_harvest_target`] / [`Engine::set_harvestable_target`]
//!    are the direct (post-admission) forms.
//! 4. **Observation**: [`Engine::finish_window`] freezes per-vSSD window
//!    statistics; [`Engine::snapshot`] exposes the remaining RL states.

mod arrival;
#[cfg(feature = "audit")]
pub mod audit;
mod dispatch;
mod gc;
mod harvest;
mod vstate;

pub use vstate::VssdCumulative;

use fleetio_des::window::WindowSummary;
use fleetio_des::{Event, EventQueue, Handle, SimDuration, SimTime, Slab};
use fleetio_flash::addr::{BlockAddr, ChannelId};
use fleetio_flash::config::FlashConfig;
use fleetio_flash::device::FlashDevice;
use fleetio_obs::{NullSink, ObsEvent, ObsSink};

use crate::admission::{AdmissionControl, HarvestAction};
use crate::gsb::GsbPool;
use crate::hbt::HarvestedBlockTable;
use crate::request::{CompletedRequest, IoOp, IoRequest, Priority, RequestId};
use crate::stride::DenseStride;
use crate::vssd::{VssdConfig, VssdId};

use self::vstate::{BlockMeta, VssdState};

/// Engine-level configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Flash device configuration.
    pub flash: FlashConfig,
    /// Maximum page operations in flight per channel. Small values keep
    /// priority scheduling responsive; large values maximize pipelining.
    pub dispatch_ahead: u32,
    /// GC triggers when a chip's free-block fraction falls below this
    /// (the paper's lazy GC with a 20 % threshold, §4.1).
    pub gc_free_threshold: f64,
    /// No gSB is created on a channel whose least-free chip is below this
    /// free fraction (§3.6: 25 %).
    pub gsb_min_free_fraction: f64,
    /// Blocks harvested per channel per gSB (§3.6: minimum superblock of
    /// 16 blocks per channel).
    pub gsb_blocks_per_channel: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            flash: FlashConfig::default(),
            dispatch_ahead: 3,
            gc_free_threshold: 0.20,
            gsb_min_free_fraction: 0.25,
            gsb_blocks_per_channel: 16,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when a field is out of range, including everything
    /// [`FlashConfig::validate`] rejects.
    pub fn validate(&self) -> Result<(), String> {
        self.flash.validate()?;
        if self.dispatch_ahead == 0 {
            return Err("dispatch_ahead must be positive".into());
        }
        if !(0.0..1.0).contains(&self.gc_free_threshold) {
            return Err("gc_free_threshold must be in [0, 1)".into());
        }
        if !(0.0..1.0).contains(&self.gsb_min_free_fraction) {
            return Err("gsb_min_free_fraction must be in [0, 1)".into());
        }
        if self.gsb_blocks_per_channel == 0 {
            return Err("gsb_blocks_per_channel must be positive".into());
        }
        Ok(())
    }
}

/// A page-granularity operation queued on a channel.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PageOp {
    pub vssd: usize,
    pub read: bool,
    pub bytes: u64,
    pub chip: u16,
    /// Slab handle of the host request this op belongs to, if any.
    pub req: Option<Handle>,
    /// Slab handle of the GC job this op belongs to, if any (mutually
    /// exclusive with `req`).
    pub gc: Option<Handle>,
}

/// Per-channel dispatcher state.
#[derive(Debug)]
pub(crate) struct ChanState {
    /// `queues[vssd_idx][priority_rank]`.
    pub queues: Vec<[std::collections::VecDeque<PageOp>; 3]>,
    /// Total queued ops per priority rank.
    pub pending: [u32; 3],
    pub in_flight: u32,
    pub stride: DenseStride,
    pub retry_pending: bool,
    /// vSSD indices that have ever used this channel.
    pub members: Vec<usize>,
}

impl ChanState {
    /// Iterates the vSSDs registered on this channel.
    pub(crate) fn stride_members(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.iter().copied()
    }
}

/// Engine events.
///
/// Payloads are small `Copy` values — state that used to ride inside the
/// event (the full `IoRequest`, the whole `GrantOp`) now lives in engine
/// slabs, referenced by generation-checked handles. That keeps queue
/// buckets compact and makes a stale reference a loud panic instead of
/// silent aliasing.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    /// A submitted request reaches its arrival time; `h` is its
    /// [`InflightReq`] slab handle.
    Arrival {
        h: Handle,
    },
    /// A page op completed on channel `ch`; `tag` is a packed completion
    /// tag (see [`Engine::page_done_tag`]).
    PageDone {
        ch: u16,
        tag: u64,
    },
    /// A GC job's erase finished; `job` is its [`GcJob`] slab handle
    /// (owner/channel/chip are read from the job at completion time).
    GcDone {
        job: Handle,
        busy: SimDuration,
    },
    AdmissionTick,
    TokenRetry {
        ch: u16,
    },
    /// Next bus grant of a time-sliced low-priority transfer; `h` is the
    /// [`GrantOp`] slab handle (progress is mutated in place per grant).
    Grant {
        ch: u16,
        h: Handle,
    },
}

/// State of a time-sliced (grant-by-grant) page operation in flight.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GrantOp {
    /// Index of the vSSD the op was issued for (observability attribution).
    pub vssd: usize,
    pub read: bool,
    pub chip: u16,
    /// Packed PageDone tag (see [`Engine::page_done_tag`]).
    pub tag: u64,
    pub gc: bool,
    pub remaining: u64,
}

/// One in-flight garbage-collection job.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GcJob {
    /// Sequential external job id, used only for observability events (so
    /// traced runs are independent of slab slot recycling).
    pub ext_id: u64,
    pub owner: VssdId,
    pub ch: u16,
    pub chip: u16,
    pub victim: BlockAddr,
    pub remaining: u32,
    pub started: SimTime,
    /// Whether this job holds the per-chip GC-in-progress slot (erase-only
    /// reclaims of dead harvested blocks run outside it).
    pub owns_chip_slot: bool,
}

/// An in-flight request's progress.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InflightReq {
    /// Sequential external request id ([`RequestId`]), carried on the
    /// completion record and observability events.
    pub ext_id: u64,
    /// Index of the owning vSSD in `Engine::vssds` (its [`VssdId`] is
    /// `vssds[idx].cfg.id`).
    pub vssd_idx: u32,
    pub op: IoOp,
    pub offset: u64,
    pub len: u64,
    pub arrival: SimTime,
    pub remaining: u32,
    pub first_start: Option<SimTime>,
}

/// RL-facing snapshot of a vSSD's non-window states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VssdSnapshot {
    /// Free logical capacity in bytes (the paper's `Avail_Capacity`).
    pub free_capacity_bytes: u64,
    /// Whether any GC job is running on the vSSD's blocks (`In_GC`).
    pub in_gc: bool,
    /// Current request priority (`Cur_Priority`).
    pub priority: Priority,
    /// Channels currently harvested *by* this vSSD (sum of gSB `n_chls`).
    pub harvested_channels: usize,
    /// This vSSD's gSB channels sitting unharvested in the pool.
    pub harvestable_channels: usize,
}

/// The multi-tenant vSSD engine. See the module docs for the API surface.
#[derive(Debug)]
pub struct Engine {
    pub(crate) cfg: EngineConfig,
    pub(crate) device: FlashDevice,
    pub(crate) now: SimTime,
    pub(crate) events: EventQueue<Ev>,
    pub(crate) vssds: Vec<VssdState>,
    /// Dense vSSD index by id, sorted by id for binary search. Fixed at
    /// construction; the engine never adds or removes vSSDs.
    pub(crate) id_to_idx: Vec<(VssdId, usize)>,
    pub(crate) chans: Vec<ChanState>,
    pub(crate) pool: GsbPool,
    pub(crate) hbt: HarvestedBlockTable,
    pub(crate) admission: AdmissionControl,
    /// Per-block metadata, dense over the device geometry (indexed by
    /// [`Engine::bidx`]); `None` for unallocated blocks.
    pub(crate) block_meta: Vec<Option<BlockMeta>>,
    /// Number of `Some` entries in `block_meta`.
    pub(crate) n_block_meta: usize,
    /// Allocated blocks per chip slot ([`Engine::chip_slot`]) for victim
    /// scans.
    pub(crate) chip_blocks: Vec<Vec<BlockAddr>>,
    pub(crate) reqs: Slab<InflightReq>,
    pub(crate) next_req: u64,
    pub(crate) completed: Vec<CompletedRequest>,
    /// Per chip slot: whether a slot-owning GC job is running there.
    pub(crate) gc_running: Vec<bool>,
    pub(crate) gc_jobs: Slab<GcJob>,
    pub(crate) next_gc_job: u64,
    /// In-flight time-sliced transfers (see [`GrantOp`]).
    pub(crate) grants: Slab<GrantOp>,
    /// Persistent per-vSSD (harvest, make-harvestable) channel targets,
    /// reconciled at every admission tick. Dense over the vSSD index;
    /// `None` until the first admission decision touches a vSSD (untouched
    /// vSSDs are skipped by reconciliation entirely).
    pub(crate) harvest_targets: Vec<Option<(usize, usize)>>,
    pub(crate) window_start: Vec<SimTime>,
    /// Suppresses GC and timing during warm-up pre-fill.
    pub(crate) warming: bool,
    /// Reentrancy guard for emergency synchronous GC.
    pub(crate) in_emergency: bool,
    /// Per-channel page ops planned during the current arrival's
    /// bookkeeping (they have not reached the queues yet, but write
    /// placement must see them to spread a multi-page request).
    pub(crate) planned: Vec<u32>,
    /// Reusable event batch for [`Engine::run_until`].
    pub(crate) batch: Vec<Event<Ev>>,
    /// Scratch buffers for the per-event hot paths. All are drained before
    /// their owning call returns; keeping them on the engine makes the
    /// steady-state event loop allocation-free.
    pub(crate) arrival_ops: Vec<(u16, PageOp)>,
    pub(crate) arrival_touched: Vec<u16>,
    pub(crate) gc_op_buf: Vec<(u16, PageOp)>,
    pub(crate) gc_touched: Vec<u16>,
    pub(crate) stripe_candidates: Vec<(ChannelId, Option<crate::gsb::GsbId>)>,
    pub(crate) home_candidates: Vec<(ChannelId, u16)>,
    pub(crate) runnable_buf: Vec<usize>,
    /// Observability sink. [`NullSink`] by default; every emission site
    /// checks [`Engine::obs_on`] first, and sinks never influence
    /// simulation state (same-seed runs are identical traced or not).
    pub(crate) obs: Box<dyn ObsSink>,
    /// Cached [`ObsSink::enabled`] of `obs`, so per-event guards are a
    /// plain bool test instead of a virtual call.
    pub(crate) obs_on: bool,
    /// Runtime invariant auditor (see [`audit`]).
    #[cfg(feature = "audit")]
    pub(crate) auditor: fleetio_des::audit::SimAuditor,
}

impl Engine {
    /// Builds an engine hosting `vssds` on a device described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the engine or any vSSD configuration is invalid, a vSSD id
    /// repeats, or a vSSD references a channel outside the device.
    pub fn new(cfg: EngineConfig, vssds: Vec<VssdConfig>) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid engine config: {e}");
        }
        let device = FlashDevice::new(cfg.flash.clone());
        let n_channels = usize::from(cfg.flash.channels);
        let chip_slots = n_channels * usize::from(cfg.flash.chips_per_channel);
        let total_blocks = chip_slots * cfg.flash.blocks_per_chip as usize;
        let mut states = Vec::with_capacity(vssds.len());
        let mut id_to_idx = Vec::with_capacity(vssds.len());
        for (idx, vc) in vssds.into_iter().enumerate() {
            if let Err(e) = vc.validate() {
                panic!("invalid vssd config: {e}");
            }
            for ch in &vc.channels {
                assert!(
                    usize::from(ch.0) < n_channels,
                    "{} references {} outside the device",
                    vc.id,
                    ch
                );
            }
            id_to_idx.push((vc.id, idx));
            states.push(VssdState::new(vc, chip_slots));
        }
        id_to_idx.sort_unstable_by_key(|(id, _)| *id);
        for pair in id_to_idx.windows(2) {
            assert!(pair[0].0 != pair[1].0, "duplicate vssd id {}", pair[0].0);
        }
        let chans = (0..n_channels)
            .map(|_| ChanState {
                queues: (0..states.len()).map(|_| Default::default()).collect(),
                pending: [0; 3],
                in_flight: 0,
                stride: DenseStride::new(),
                retry_pending: false,
                members: Vec::new(),
            })
            .collect();
        let mut events = EventQueue::new();
        let admission = AdmissionControl::new();
        events.push(
            SimTime::ZERO + admission.batch_interval(),
            Ev::AdmissionTick,
        );
        let n_vssds = states.len();
        let hbt = HarvestedBlockTable::new(
            cfg.flash.channels,
            cfg.flash.chips_per_channel,
            cfg.flash.blocks_per_chip,
        );
        Engine {
            cfg,
            device,
            now: SimTime::ZERO,
            events,
            vssds: states,
            id_to_idx,
            chans,
            pool: GsbPool::new(n_channels),
            hbt,
            admission,
            block_meta: vec![None; total_blocks],
            n_block_meta: 0,
            chip_blocks: (0..chip_slots).map(|_| Vec::new()).collect(),
            reqs: Slab::new(),
            next_req: 0,
            completed: Vec::new(),
            gc_running: vec![false; chip_slots],
            gc_jobs: Slab::new(),
            next_gc_job: 0,
            grants: Slab::new(),
            harvest_targets: vec![None; n_vssds],
            window_start: vec![SimTime::ZERO; n_vssds],
            warming: false,
            in_emergency: false,
            planned: vec![0; n_channels],
            batch: Vec::new(),
            arrival_ops: Vec::new(),
            arrival_touched: Vec::new(),
            gc_op_buf: Vec::new(),
            gc_touched: Vec::new(),
            stripe_candidates: Vec::new(),
            home_candidates: Vec::new(),
            runnable_buf: Vec::new(),
            obs: Box::new(NullSink),
            obs_on: false,
            #[cfg(feature = "audit")]
            auditor: fleetio_des::audit::SimAuditor::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The underlying flash device (read-only).
    pub fn device(&self) -> &FlashDevice {
        &self.device
    }

    /// Admission-control stage (for configuring permissions/policies).
    pub fn admission_mut(&mut self) -> &mut AdmissionControl {
        &mut self.admission
    }

    /// Installs an observability sink, returning the previous one.
    ///
    /// Sinks only observe: installing or removing one never changes the
    /// simulation's behavior or results.
    pub fn set_obs_sink(&mut self, sink: Box<dyn ObsSink>) -> Box<dyn ObsSink> {
        self.obs_on = sink.enabled();
        std::mem::replace(&mut self.obs, sink)
    }

    /// Removes the current sink (restoring the no-op default) so its
    /// captured events and metrics can be exported.
    pub fn take_obs_sink(&mut self) -> Box<dyn ObsSink> {
        self.obs_on = false;
        std::mem::replace(&mut self.obs, Box::new(NullSink))
    }

    /// The installed observability sink.
    pub fn obs_sink(&self) -> &dyn ObsSink {
        self.obs.as_ref()
    }

    /// Records an externally-produced event (e.g. the fleet control
    /// plane's SLO verdicts and migrations) into the installed sink, so
    /// one per-engine stream carries both device and control-plane
    /// facts. Like every sink interaction this only observes: it never
    /// changes simulation behavior.
    pub fn emit_obs(&mut self, ev: ObsEvent) {
        if self.obs_on {
            self.obs.record(ev);
        }
    }

    /// The live request-latency histogram of `id`'s current statistics
    /// window (exact buckets, completion-path attribution; reset by
    /// [`Engine::finish_window`]). Callers that need the window's
    /// percentiles must clone before finishing the window.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn window_latency(&self, id: VssdId) -> &fleetio_des::LatencyHistogram {
        self.vssds[self.idx(id)].window.latency()
    }

    pub(crate) fn idx(&self, id: VssdId) -> usize {
        match self.id_to_idx.binary_search_by_key(&id, |(k, _)| *k) {
            Ok(pos) => self.id_to_idx[pos].1,
            Err(_) => panic!("unknown vssd {id}"),
        }
    }

    /// Dense index of a `(channel, chip)` pair into the per-chip tables
    /// (`chip_blocks`, `gc_running`, per-vSSD `open_blocks`).
    #[inline]
    pub(crate) fn chip_slot(&self, ch: u16, chip: u16) -> usize {
        usize::from(ch) * usize::from(self.cfg.flash.chips_per_channel) + usize::from(chip)
    }

    /// Dense index of a block into `block_meta`.
    #[inline]
    pub(crate) fn bidx(&self, blk: BlockAddr) -> usize {
        self.chip_slot(blk.channel.0, blk.chip) * self.cfg.flash.blocks_per_chip as usize
            + blk.block as usize
    }

    #[inline]
    pub(crate) fn block_meta_get(&self, blk: BlockAddr) -> Option<&BlockMeta> {
        self.block_meta[self.bidx(blk)].as_ref()
    }

    #[inline]
    pub(crate) fn block_meta_get_mut(&mut self, blk: BlockAddr) -> Option<&mut BlockMeta> {
        let i = self.bidx(blk);
        self.block_meta[i].as_mut()
    }

    pub(crate) fn block_meta_insert(&mut self, blk: BlockAddr, meta: BlockMeta) {
        let i = self.bidx(blk);
        if self.block_meta[i].replace(meta).is_none() {
            self.n_block_meta += 1;
        }
    }

    pub(crate) fn block_meta_remove(&mut self, blk: BlockAddr) -> Option<BlockMeta> {
        let i = self.bidx(blk);
        let meta = self.block_meta[i].take();
        if meta.is_some() {
            self.n_block_meta -= 1;
        }
        meta
    }

    /// Ids of all hosted vSSDs in registration order.
    pub fn vssd_ids(&self) -> Vec<VssdId> {
        self.vssds.iter().map(|v| v.cfg.id).collect()
    }

    /// A vSSD's configuration.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn vssd_config(&self, id: VssdId) -> &VssdConfig {
        &self.vssds[self.idx(id)].cfg
    }

    /// Logical capacity of a vSSD in pages, derived from its channel share
    /// after over-provisioning.
    pub fn logical_capacity_pages(&self, id: VssdId) -> u64 {
        let v = &self.vssds[self.idx(id)];
        let f = &self.cfg.flash;
        let full = v.cfg.channels.len() as u64
            * u64::from(f.chips_per_channel)
            * u64::from(f.logical_blocks_per_chip())
            * u64::from(f.pages_per_block);
        (full as f64 * v.cfg.capacity_share) as u64
    }

    /// Logical capacity of a vSSD in bytes.
    pub fn logical_capacity_bytes(&self, id: VssdId) -> u64 {
        self.logical_capacity_pages(id) * u64::from(self.cfg.flash.page_bytes)
    }

    /// Converts a bandwidth to whole gSB channels (rounding down), per §3.6.
    pub fn channels_for_bandwidth(&self, bytes_per_sec: f64) -> usize {
        if !bytes_per_sec.is_finite() || bytes_per_sec <= 0.0 {
            return 0;
        }
        (bytes_per_sec / self.cfg.flash.channel_peak_bytes_per_sec()).floor() as usize
    }

    /// Submits one I/O request. Returns the id its completion will carry.
    ///
    /// # Panics
    ///
    /// Panics if the request's arrival is in the simulated past, its vSSD
    /// is unknown, or its length is zero.
    pub fn submit(&mut self, req: IoRequest) -> RequestId {
        assert!(
            req.arrival >= self.now,
            "arrival {} is before now {}",
            req.arrival,
            self.now
        );
        assert!(req.len > 0, "request length must be positive");
        let idx = self.idx(req.vssd);
        let id = self.next_req;
        self.next_req += 1;
        if self.obs_on {
            self.obs.record(ObsEvent::RequestSubmit {
                at: req.arrival,
                req: id,
                vssd: req.vssd.0,
                read: req.op.is_read(),
                bytes: req.len,
            });
        }
        let h = self.reqs.insert(InflightReq {
            ext_id: id,
            vssd_idx: idx as u32,
            op: req.op,
            offset: req.offset,
            len: req.len,
            arrival: req.arrival,
            remaining: 0,
            first_start: None,
        });
        self.events.push(req.arrival, Ev::Arrival { h });
        RequestId(id)
    }

    /// Advances simulated time to `t`, processing every event in order.
    ///
    /// Events are drained from the calendar queue in whole-bucket batches
    /// ([`EventQueue::drain_before`]); events a handler schedules *during*
    /// the batch are interleaved back in by a strictly-before inner pop.
    /// Ordering is identical to one-at-a-time popping: a drained batch
    /// took every event at each covered timestamp in seq order, and any
    /// event pushed afterwards carries a larger seq, so among equal
    /// timestamps the batch legitimately runs first.
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the current time.
    pub fn run_until(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot run backwards");
        let _prof = fleetio_obs::prof::span("engine.run_until");
        let mut batch = std::mem::take(&mut self.batch);
        loop {
            batch.clear();
            self.events.drain_before(t, &mut batch);
            if batch.is_empty() {
                break;
            }
            for ev in &batch {
                // Newly scheduled events that fire strictly before this
                // batch entry run first (equal-time pushes have larger
                // seqs and correctly wait their turn).
                while let Some(inner) = self.events.pop_strictly_before(ev.at) {
                    self.dispatch_event(inner.at, inner.payload);
                }
                self.dispatch_event(ev.at, ev.payload);
            }
        }
        self.batch = batch;
        self.now = t;
    }

    /// Dispatches one event at its timestamp.
    fn dispatch_event(&mut self, at: SimTime, ev: Ev) {
        self.now = at;
        // One host-time span per event kind: the DES dispatch loop is
        // the simulator's hottest path, and the per-kind breakdown is
        // what the perf baseline tracks.
        let _ev_prof = fleetio_obs::prof::span(match ev {
            Ev::Arrival { .. } => "engine.ev.arrival",
            Ev::PageDone { .. } => "engine.ev.page_done",
            Ev::GcDone { .. } => "engine.ev.gc_done",
            Ev::AdmissionTick => "engine.ev.admission_tick",
            Ev::TokenRetry { .. } => "engine.ev.token_retry",
            Ev::Grant { .. } => "engine.ev.grant",
        });
        match ev {
            Ev::Arrival { h } => self.process_arrival(h),
            Ev::PageDone { ch, tag } => self.process_page_done(ch, tag),
            Ev::GcDone { job, busy } => self.process_gc_done(job, busy),
            Ev::AdmissionTick => self.process_admission_tick(),
            Ev::TokenRetry { ch } => {
                self.chans[usize::from(ch)].retry_pending = false;
                self.try_dispatch(ch);
            }
            Ev::Grant { ch, h } => self.process_grant(ch, h),
        }
        #[cfg(feature = "audit")]
        self.audit_event();
    }

    /// Lifetime count of DES events processed by this engine (the
    /// sim-events/sec numerator for throughput reporting).
    pub fn events_processed(&self) -> u64 {
        self.events.popped()
    }

    /// Drains all requests completed since the last call.
    pub fn drain_completed(&mut self) -> Vec<CompletedRequest> {
        std::mem::take(&mut self.completed)
    }

    /// Sets a vSSD's I/O priority (the RL `Set_Priority(level)` action).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn set_priority(&mut self, id: VssdId, priority: Priority) {
        let idx = self.idx(id);
        self.vssds[idx].priority = priority;
    }

    /// Sets (or clears) a vSSD's tail-latency SLO. Experiments measure the
    /// SLO from a hardware-isolated calibration run (§3.3.1) and install it
    /// here before the measured run.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn set_slo(&mut self, id: VssdId, slo: Option<SimDuration>) {
        let idx = self.idx(id);
        self.vssds[idx].cfg.slo = slo;
    }

    /// Re-weights a vSSD's stride-scheduling tickets on every channel it
    /// uses (the Adaptive baseline's proportional-share reallocation).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or `tickets` is zero.
    pub fn set_tickets(&mut self, id: VssdId, tickets: u32) {
        assert!(tickets > 0, "tickets must be positive");
        let idx = self.idx(id);
        self.vssds[idx].cfg.tickets = tickets;
        for chan in &mut self.chans {
            chan.stride.set_tickets(idx, tickets);
        }
    }

    /// Installs or replaces a vSSD's token-bucket rate limit (bytes/second;
    /// `None` removes throttling). Used by the Adaptive baseline to
    /// re-provision shares every window.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the rate is not positive.
    pub fn set_rate_limit(&mut self, id: VssdId, bytes_per_sec: Option<f64>) {
        let idx = self.idx(id);
        self.vssds[idx].cfg.rate_limit = bytes_per_sec;
        self.vssds[idx].bucket =
            bytes_per_sec.map(|rate| crate::token_bucket::TokenBucket::new(rate, rate * 0.05));
    }

    /// Routes a harvest action through admission control. It executes at
    /// the next 50 ms admission batch. Returns whether the action passed
    /// the permission check.
    pub fn submit_action(&mut self, action: HarvestAction) -> bool {
        self.admission.submit(action)
    }

    /// Freezes and returns the vSSD's statistics window covering
    /// `[last call, now]`, and starts a new window.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or no time has passed since the last call.
    pub fn finish_window(&mut self, id: VssdId) -> WindowSummary {
        let _prof = fleetio_obs::prof::span("engine.finish_window");
        let idx = self.idx(id);
        let start = self.window_start[idx];
        let len = self.now.saturating_since(start);
        self.window_start[idx] = self.now;
        let summary = self.vssds[idx].window.finish(start, len);
        if self.obs_on {
            self.obs.record(ObsEvent::WindowFlush {
                at: self.now,
                vssd: id.0,
                avg_bandwidth: summary.avg_bandwidth,
                avg_iops: summary.avg_iops,
                p99_latency: summary.p99_latency,
                slo_violation_rate: summary.slo_violation_rate,
                gc_busy_frac: summary.gc_busy_frac,
                total_bytes: summary.total_bytes,
                total_ops: summary.total_ops,
            });
            self.flush_window_metrics(id, &summary);
        }
        summary
    }

    /// Updates the sink's metrics registry at a window boundary: per-vSSD
    /// traffic counters and window-P99 histogram, plus per-channel
    /// queue-depth / occupancy gauges sampled from the dispatcher and the
    /// device.
    fn flush_window_metrics(&mut self, id: VssdId, summary: &WindowSummary) {
        if !self.obs_on {
            return;
        }
        let chan_obs = self.device.channel_obs(self.now);
        let queue_depths: Vec<u32> = self
            .chans
            .iter()
            .map(|c| c.pending.iter().sum::<u32>() + c.in_flight)
            .collect();
        let Some(reg) = self.obs.metrics() else {
            return;
        };
        let vssd = id.0;
        let ops = reg.counter(&format!("vssd{vssd}.ops"));
        reg.add(ops, summary.total_ops);
        let bytes = reg.counter(&format!("vssd{vssd}.bytes"));
        reg.add(bytes, summary.total_bytes);
        let gc_events = reg.counter(&format!("vssd{vssd}.gc_events"));
        reg.add(gc_events, summary.gc_events);
        let p99 = reg.histogram(&format!("vssd{vssd}.window_p99_ns"));
        reg.observe(p99, summary.p99_latency.as_nanos());
        for (ch, (obs, qd)) in chan_obs.iter().zip(&queue_depths).enumerate() {
            let g = reg.gauge(&format!("chan{ch}.queue_depth"));
            reg.set(g, i64::from(*qd));
            let g = reg.gauge(&format!("chan{ch}.busy_chips"));
            reg.set(g, i64::from(obs.busy_chips));
            let g = reg.gauge(&format!("chan{ch}.bus_backlog_ns"));
            reg.set(g, obs.bus_backlog.as_nanos() as i64);
            let g = reg.gauge(&format!("chan{ch}.bytes_moved"));
            reg.set(g, obs.bytes_moved as i64);
            for (chip, backlog) in obs.chip_backlog.iter().enumerate() {
                let g = reg.gauge(&format!("chan{ch}.chip{chip}.backlog_ns"));
                reg.set(g, backlog.as_nanos() as i64);
            }
        }
    }

    /// RL-facing snapshot of a vSSD's non-window states.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn snapshot(&self, id: VssdId) -> VssdSnapshot {
        let v = &self.vssds[self.idx(id)];
        let mapped = v.mapped_pages * u64::from(self.cfg.flash.page_bytes);
        let harvested_channels = v
            .harvested
            .iter()
            .filter_map(|g| self.pool.get(*g))
            .map(|g| g.n_chls())
            .sum();
        let harvestable_channels = self
            .pool
            .of_home(id)
            .iter()
            .filter_map(|g| self.pool.get(*g))
            .filter(|g| !g.in_use())
            .map(|g| g.n_chls())
            .sum();
        VssdSnapshot {
            free_capacity_bytes: self.logical_capacity_bytes(id).saturating_sub(mapped),
            in_gc: v.in_gc(),
            priority: v.priority,
            harvested_channels,
            harvestable_channels,
        }
    }

    /// Clears a vSSD's lifetime-cumulative statistics (used to exclude
    /// ramp-up windows from measured runs).
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn reset_cumulative(&mut self, id: VssdId) {
        let idx = self.idx(id);
        self.vssds[idx].cumulative = vstate::VssdCumulative::default();
    }

    /// Lifetime-cumulative statistics of a vSSD.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn cumulative(&self, id: VssdId) -> &VssdCumulative {
        &self.vssds[self.idx(id)].cumulative
    }

    /// Pre-fills `fraction` of the vSSD's logical space (bookkeeping only,
    /// no simulated time), so GC pressure matches a warmed device as in
    /// §4.1 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]` or `id` is unknown.
    pub fn warm_up(&mut self, id: VssdId, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let idx = self.idx(id);
        let pages = (self.logical_capacity_pages(id) as f64 * fraction) as u64;
        self.warming = true;
        for lpa in 0..pages {
            self.write_page_bookkeeping(idx, lpa);
        }
        self.warming = false;
    }

    /// The per-channel peak bandwidth used for bandwidth↔channel
    /// conversions, bytes/second.
    pub fn channel_peak_bytes_per_sec(&self) -> f64 {
        self.cfg.flash.channel_peak_bytes_per_sec()
    }

    /// Total queued page operations for a vSSD across all channels
    /// (an instantaneous queue-depth signal).
    pub fn queued_ops(&self, id: VssdId) -> usize {
        let idx = self.idx(id);
        self.chans
            .iter()
            .map(|c| c.queues[idx].iter().map(|q| q.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_flash::addr::ChannelId;

    fn engine_2vssd() -> Engine {
        let cfg = EngineConfig {
            flash: FlashConfig::small_test(),
            ..Default::default()
        };
        let v0 = VssdConfig::hardware(VssdId(0), vec![ChannelId(0), ChannelId(1)]);
        let v1 = VssdConfig::hardware(VssdId(1), vec![ChannelId(2), ChannelId(3)]);
        Engine::new(cfg, vec![v0, v1])
    }

    #[test]
    fn construction_and_accessors() {
        let e = engine_2vssd();
        assert_eq!(e.vssd_ids(), vec![VssdId(0), VssdId(1)]);
        assert_eq!(e.now(), SimTime::ZERO);
        // 2 channels × 2 chips × logical blocks (80% of 16 = 12) × 32 pages.
        assert_eq!(e.logical_capacity_pages(VssdId(0)), 2 * 2 * 12 * 32);
    }

    #[test]
    fn channels_for_bandwidth_rounds_down() {
        let e = engine_2vssd();
        let ch_bw = e.channel_peak_bytes_per_sec();
        assert_eq!(e.channels_for_bandwidth(0.0), 0);
        assert_eq!(e.channels_for_bandwidth(ch_bw * 0.9), 0);
        assert_eq!(e.channels_for_bandwidth(ch_bw * 1.5), 1);
        assert_eq!(e.channels_for_bandwidth(ch_bw * 3.0), 3);
        assert_eq!(e.channels_for_bandwidth(f64::NAN), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate vssd id")]
    fn duplicate_ids_panic() {
        let cfg = EngineConfig {
            flash: FlashConfig::small_test(),
            ..Default::default()
        };
        let v = VssdConfig::hardware(VssdId(0), vec![ChannelId(0)]);
        let _ = Engine::new(cfg, vec![v.clone(), v]);
    }

    #[test]
    #[should_panic(expected = "outside the device")]
    fn out_of_range_channel_panics() {
        let cfg = EngineConfig {
            flash: FlashConfig::small_test(),
            ..Default::default()
        };
        let v = VssdConfig::hardware(VssdId(0), vec![ChannelId(99)]);
        let _ = Engine::new(cfg, vec![v]);
    }

    #[test]
    #[should_panic(expected = "cannot run backwards")]
    fn run_backwards_panics() {
        let mut e = engine_2vssd();
        e.run_until(SimTime::from_secs(1));
        e.run_until(SimTime::from_millis(1));
    }

    #[test]
    fn warm_up_consumes_capacity() {
        let mut e = engine_2vssd();
        let before = e.snapshot(VssdId(0)).free_capacity_bytes;
        e.warm_up(VssdId(0), 0.5);
        let after = e.snapshot(VssdId(0)).free_capacity_bytes;
        assert!(after < before);
        assert!((before - after) as f64 / before as f64 > 0.45);
        // Warm-up must not advance time or consume device bus accounting.
        assert_eq!(e.now(), SimTime::ZERO);
        assert_eq!(e.device().stats().host_write_bytes, 0);
    }

    #[test]
    fn snapshot_defaults() {
        let e = engine_2vssd();
        let s = e.snapshot(VssdId(0));
        assert!(!s.in_gc);
        assert_eq!(s.priority, Priority::Medium);
        assert_eq!(s.harvested_channels, 0);
        assert_eq!(s.harvestable_channels, 0);
    }

    #[test]
    fn config_validation() {
        let mut c = EngineConfig::default();
        assert!(c.validate().is_ok());
        c.dispatch_ahead = 0;
        assert!(c.validate().is_err());
        c = EngineConfig::default();
        c.gc_free_threshold = 1.5;
        assert!(c.validate().is_err());
    }
}
