//! Request arrival processing: FTL bookkeeping and op enqueueing.
//!
//! Address-mapping updates happen at arrival time; the queued page ops only
//! carry timing. This keeps GC's view of valid data coherent without
//! tracking in-flight writes, at the cost of treating data as durable the
//! moment it is accepted — indistinguishable for the bandwidth/latency
//! metrics this simulation reports.
//!
//! This is the hottest event handler in the engine, so its working vectors
//! (`arrival_ops`, `arrival_touched`, `stripe_candidates`,
//! `home_candidates`) live on the [`Engine`] and are reused across events:
//! at steady state an arrival performs no heap allocation.

use fleetio_des::Handle;
use fleetio_flash::addr::{BlockAddr, ChannelId, Ppa};

use crate::request::IoOp;

use super::vstate::BlockMeta;
use super::{Engine, PageOp};

impl Engine {
    pub(crate) fn process_arrival(&mut self, h: Handle) {
        let r = self.reqs[h];
        let idx = r.vssd_idx as usize;
        let page_bytes = u64::from(self.cfg.flash.page_bytes);
        let first = r.offset / page_bytes;
        let last = (r.offset + r.len - 1) / page_bytes;
        self.planned.fill(0);
        let mut ops = std::mem::take(&mut self.arrival_ops);
        ops.clear();
        for lpa in first..=last {
            // Bytes of this request that fall inside page `lpa`.
            let page_start = lpa * page_bytes;
            let lo = r.offset.max(page_start);
            let hi = (r.offset + r.len).min(page_start + page_bytes);
            let portion = hi - lo;
            match r.op {
                IoOp::Read => {
                    let ppa = self.read_page_lookup(idx, lpa);
                    self.planned[usize::from(ppa.channel().0)] += 1;
                    ops.push((
                        ppa.channel().0,
                        PageOp {
                            vssd: idx,
                            read: true,
                            bytes: portion,
                            chip: ppa.chip(),
                            req: Some(h),
                            gc: None,
                        },
                    ));
                }
                IoOp::Write => {
                    let ppa = self.write_page_bookkeeping(idx, lpa);
                    self.planned[usize::from(ppa.channel().0)] += 1;
                    // Programs always burn a full page on the bus and chip.
                    ops.push((
                        ppa.channel().0,
                        PageOp {
                            vssd: idx,
                            read: false,
                            bytes: page_bytes,
                            chip: ppa.chip(),
                            req: Some(h),
                            gc: None,
                        },
                    ));
                }
            }
        }
        if let Some(r) = self.reqs.get_mut(h) {
            r.remaining = ops.len() as u32;
        }
        if self.obs_on {
            self.obs.record(fleetio_obs::ObsEvent::RequestAdmit {
                at: self.now,
                req: r.ext_id,
                vssd: self.vssds[idx].cfg.id.0,
                pages: ops.len() as u32,
            });
        }
        let prio = self.vssds[idx].priority;
        let mut touched = std::mem::take(&mut self.arrival_touched);
        touched.clear();
        for (ch, op) in ops.drain(..) {
            let chan = &mut self.chans[usize::from(ch)];
            if !chan.stride.contains(idx) {
                chan.stride.add_client(idx, self.vssds[idx].cfg.tickets);
                chan.members.push(idx);
            }
            chan.queues[idx][prio.rank()].push_back(op);
            chan.pending[prio.rank()] += 1;
            if !touched.contains(&ch) {
                touched.push(ch);
            }
        }
        self.arrival_ops = ops;
        for &ch in &touched {
            self.try_dispatch(ch);
        }
        touched.clear();
        self.arrival_touched = touched;
    }

    /// Maps a logical page for reading. Unwritten pages read from a
    /// deterministic home location (real devices return zeroes but still
    /// occupy the channel).
    pub(crate) fn read_page_lookup(&mut self, idx: usize, lpa: u64) -> Ppa {
        if let Some(ppa) = self.vssds[idx].map.get(lpa) {
            return ppa;
        }
        let homes = &self.vssds[idx].cfg.channels;
        let ch = homes[(lpa as usize) % homes.len()];
        let chip =
            ((lpa / homes.len() as u64) % u64::from(self.cfg.flash.chips_per_channel)) as u16;
        Ppa::new(ch, chip, 0, 0)
    }

    /// Performs the FTL bookkeeping for writing one logical page: picks the
    /// next stripe target (home channel or harvested gSB), appends there,
    /// updates the mapping and triggers GC checks. Returns the physical
    /// location written.
    pub(crate) fn write_page_bookkeeping(&mut self, idx: usize, lpa: u64) -> Ppa {
        // Invalidate the previous version, if any; a loaned (harvested)
        // block whose last live page dies goes straight back to its home.
        if let Some(old) = self.vssds[idx].map.get(lpa) {
            self.device.invalidate_page(old.block, old.page);
            self.maybe_reclaim_dead_harvested(old.block);
        } else {
            self.vssds[idx].mapped_pages += 1;
        }
        let (block, page) = self.append_page_striped(idx, lpa);
        let ppa = Ppa { block, page };
        self.vssds[idx].map.set(lpa, ppa);
        if !self.warming {
            self.maybe_trigger_gc(block.channel, block.chip, idx);
        }
        ppa
    }

    /// Appends one page using dynamic (least-loaded-channel) allocation
    /// over the vSSD's write targets: its home channels plus the channels
    /// of every harvested gSB. Load-aware placement is what real host FTLs
    /// do, and it is what makes harvesting *idle-bandwidth* harvesting: a
    /// busy loaned channel simply attracts no pages, so a straggling
    /// channel never gates a striped request. Exhausted gSBs are retired
    /// on encounter so the harvest level frees up for a fresh one.
    fn append_page_striped(&mut self, idx: usize, lpa: u64) -> (BlockAddr, u32) {
        let mut candidates = std::mem::take(&mut self.stripe_candidates);
        let out = loop {
            // Candidate channels: (channel, via-gSB). Home channels listed
            // first so ties favour them.
            candidates.clear();
            candidates.extend(self.vssds[idx].cfg.channels.iter().map(|&c| (c, None)));
            for &g in &self.vssds[idx].harvested {
                if let Some(gsb) = self.pool.get(g) {
                    for &c in &gsb.channels {
                        candidates.push((c, Some(g)));
                    }
                }
            }
            // Rotate the starting point so equal-load ties spread out.
            let start = self.vssds[idx].stripe_pos % candidates.len();
            self.vssds[idx].stripe_pos = self.vssds[idx].stripe_pos.wrapping_add(1);
            let mut best: Option<(u32, usize)> = None;
            let mut i = start;
            for _ in 0..candidates.len() {
                let load = self.channel_load(candidates[i].0);
                if best.is_none_or(|(l, _)| load < l) {
                    best = Some((load, i));
                }
                i += 1;
                if i == candidates.len() {
                    i = 0;
                }
            }
            let (ch, via) = candidates[best.expect("candidates non-empty").1];
            match via {
                None => break self.append_home_page(idx, ch, lpa),
                Some(g) => {
                    if let Some(out) = self.append_gsb_page_on(idx, g, ch, lpa) {
                        break out;
                    }
                    // No room on that channel: if the whole gSB is
                    // exhausted retire it, else fall back to any gSB slot.
                    if let Some(out) = self.append_gsb_page(idx, g, lpa) {
                        break out;
                    }
                    self.retire_gsb_from_stripe(idx, g);
                }
            }
        };
        candidates.clear();
        self.stripe_candidates = candidates;
        out
    }

    /// Queued + in-flight page ops on a channel (the write-placement load
    /// signal).
    fn channel_load(&self, ch: ChannelId) -> u32 {
        let c = &self.chans[usize::from(ch.0)];
        c.pending.iter().sum::<u32>() + c.in_flight + self.planned[usize::from(ch.0)]
    }

    /// Appends into a gSB, restricted to its blocks on channel `ch`.
    fn append_gsb_page_on(
        &mut self,
        idx: usize,
        id: crate::gsb::GsbId,
        ch: ChannelId,
        lpa: u64,
    ) -> Option<(BlockAddr, u32)> {
        let blk = {
            let gsb = self.pool.get(id)?;
            gsb.blocks.iter().copied().find(|b| {
                b.channel == ch
                    && self
                        .device
                        .chip(b.channel, b.chip)
                        .block(b.block)
                        .free_pages()
                        > 0
            })?
        };
        let page = self.device.append_page(blk, fleetio_flash::addr::Lpa(lpa));
        let harvester = self.vssds[idx].cfg.id;
        if let Some(meta) = self.block_meta_get_mut(blk) {
            meta.data_owner = harvester;
        }
        Some((blk, page))
    }

    /// Appends into a harvested gSB, rotating across its blocks. Returns
    /// `None` when the gSB has no free pages left.
    fn append_gsb_page(
        &mut self,
        idx: usize,
        id: crate::gsb::GsbId,
        lpa: u64,
    ) -> Option<(BlockAddr, u32)> {
        let capacity = self.pool.get(id)?.capacity_blocks();
        for _ in 0..capacity {
            let blk = self.pool.get_mut(id)?.rotate_block();
            if self
                .device
                .chip(blk.channel, blk.chip)
                .block(blk.block)
                .free_pages()
                > 0
            {
                let page = self.device.append_page(blk, fleetio_flash::addr::Lpa(lpa));
                // First write into a gSB block stamps its data owner.
                let harvester = self.vssds[idx].cfg.id;
                if let Some(meta) = self.block_meta_get_mut(blk) {
                    meta.data_owner = harvester;
                }
                return Some((blk, page));
            }
        }
        None
    }

    /// Removes an exhausted gSB from the vSSD's write stripe (it remains
    /// harvested for reads until GC reclaims it).
    pub(crate) fn retire_gsb_from_stripe(&mut self, idx: usize, id: crate::gsb::GsbId) {
        self.vssds[idx].harvested.retain(|g| *g != id);
        let pool = &self.pool;
        let chans = |g| pool.get(g).map_or(0, |x| x.n_chls());
        self.vssds[idx].rebuild_stripe(chans);
    }

    /// Appends one page to the vSSD's own blocks on home channel `ch`
    /// (used by foreground writes and GC migration targets).
    pub(crate) fn append_home_page(
        &mut self,
        idx: usize,
        ch: ChannelId,
        lpa: u64,
    ) -> (BlockAddr, u32) {
        let chips = self.cfg.flash.chips_per_channel;
        let start_chip = self.device.channel_mut(ch).rotate_chip();
        // Try the rotated chip, then the rest of the channel, then the
        // vSSD's other home channels.
        let mut candidates = std::mem::take(&mut self.home_candidates);
        candidates.clear();
        for off in 0..chips {
            candidates.push((ch, (start_chip + off) % chips));
        }
        for i in 0..self.vssds[idx].cfg.channels.len() {
            let other = self.vssds[idx].cfg.channels[i];
            if other == ch {
                continue;
            }
            for chip in 0..chips {
                candidates.push((other, chip));
            }
        }
        for pos in 0..candidates.len() {
            let (c, chip) = candidates[pos];
            if let Some((blk, page)) = self.try_append_on(idx, c, chip, lpa) {
                self.home_candidates = candidates;
                return (blk, page);
            }
        }
        // Out of space everywhere: emergency synchronous GC, then retry.
        if !self.in_emergency {
            self.in_emergency = true;
            for pos in 0..candidates.len() {
                let (c, chip) = candidates[pos];
                if self.run_gc_emergency(c, chip) {
                    if let Some((blk, page)) = self.try_append_on(idx, c, chip, lpa) {
                        self.in_emergency = false;
                        self.home_candidates = candidates;
                        return (blk, page);
                    }
                }
            }
            self.in_emergency = false;
        }
        panic!(
            "vssd {} out of flash space: no free block on any home channel. \
             The device is too small for the offered load — in-flight \
             writes (closed-loop concurrency x request size) plus the \
             working set must fit the vSSD's raw capacity",
            self.vssds[idx].cfg.id
        );
    }

    /// Appends on a specific `(channel, chip)`, opening a new block if the
    /// current one is full. Returns `None` when the chip is out of blocks.
    fn try_append_on(
        &mut self,
        idx: usize,
        ch: ChannelId,
        chip: u16,
        lpa: u64,
    ) -> Option<(BlockAddr, u32)> {
        let slot = self.chip_slot(ch.0, chip);
        let need_new = match self.vssds[idx].open_blocks[slot] {
            Some(blk) => self.device.chip(ch, chip).block(blk.block).free_pages() == 0,
            None => true,
        };
        if need_new {
            let blk = if self.in_emergency {
                self.device.allocate_block_gc(ch, chip)?
            } else {
                self.device.allocate_block(ch, chip)?
            };
            let id = self.vssds[idx].cfg.id;
            self.block_meta_insert(
                blk,
                BlockMeta {
                    resource_owner: id,
                    data_owner: id,
                    gsb: None,
                },
            );
            self.chip_blocks[slot].push(blk);
            self.vssds[idx].open_blocks[slot] = Some(blk);
        }
        let blk = self.vssds[idx].open_blocks[slot].expect("open block exists");
        let page = self.device.append_page(blk, fleetio_flash::addr::Lpa(lpa));
        Some((blk, page))
    }
}
