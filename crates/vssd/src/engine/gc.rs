//! Garbage collection (§3.7 of the paper).
//!
//! GC is lazy: it triggers when a chip's free-block fraction drops below
//! the configured threshold (20 % by default). Victim selection prioritizes
//! harvested/reclaimed blocks (per the Harvested Block Table) over regular
//! blocks, and among those picks the fewest live pages (greedy). Valid data
//! in a harvested block is migrated to blocks owned by the vSSD whose data
//! it is (the harvester), exactly as Figure 9 describes; regular blocks
//! migrate within their own vSSD.
//!
//! Migration traffic flows through the normal per-channel dispatcher as
//! *low-priority* page operations, so foreground I/O preempts GC instead of
//! stalling behind a monolithic collection (as on real controllers with
//! program/erase suspend). When free space becomes critical the GC ops
//! escalate to higher priorities, and an out-of-space allocation falls back
//! to a fully synchronous emergency collection.

use fleetio_des::{Handle, SimDuration};
use fleetio_flash::addr::{BlockAddr, ChannelId};
use fleetio_flash::block::BlockPhase;

use crate::hbt::BlockClass;
use crate::request::Priority;

use super::{Engine, Ev, GcJob, PageOp};

impl Engine {
    /// Checks GC pressure on `(ch, chip)` after a write by vSSD `idx` and
    /// starts a GC job if needed.
    pub(crate) fn maybe_trigger_gc(&mut self, ch: ChannelId, chip: u16, idx: usize) {
        if self.warming || self.gc_running[self.chip_slot(ch.0, chip)] {
            return;
        }
        if self.device.chip(ch, chip).free_fraction() >= self.cfg.gc_free_threshold {
            return;
        }
        self.run_gc(ch, chip, idx);
    }

    /// Starts one GC pass (single victim) on `(ch, chip)`.
    ///
    /// Bookkeeping (mapping updates, invalidation, destination allocation)
    /// happens immediately; the data movement is enqueued as page ops whose
    /// priority reflects how urgent the space pressure is. The victim's
    /// erase and release happen when the last migration op completes.
    pub(crate) fn run_gc(&mut self, ch: ChannelId, chip: u16, idx: usize) {
        let Some(victim) = self.select_victim(ch, chip) else {
            return;
        };
        let owner = self
            .block_meta_get(victim)
            .map(|m| m.resource_owner)
            .unwrap_or(self.vssds[idx].cfg.id);
        let owner_idx = self.idx(owner);
        self.device.note_gc_run();
        let slot = self.chip_slot(ch.0, chip);
        self.gc_running[slot] = true;
        self.vssds[owner_idx].gc_active += 1;

        let priority = self.gc_priority(ch, chip);
        let page_bytes = u64::from(self.cfg.flash.page_bytes);
        let live: Vec<(u32, u64)> = self
            .device
            .chip(victim.channel, victim.chip)
            .block(victim.block)
            .valid_pages()
            .map(|(p, lpa)| (p, lpa.0))
            .collect();
        let data_owner = self
            .block_meta_get(victim)
            .map(|m| m.data_owner)
            .unwrap_or(owner);
        let dst_idx = self.idx(data_owner);

        let ext_id = self.next_gc_job;
        self.next_gc_job += 1;
        // Register the job *before* allocating migration destinations: a
        // destination append can trigger emergency GC, which must not pick
        // this victim (it would erase it mid-migration).
        let job = self.gc_jobs.insert(GcJob {
            ext_id,
            owner,
            ch: ch.0,
            chip,
            victim,
            remaining: u32::MAX,
            started: self.now,
            owns_chip_slot: true,
        });
        if self.obs_on {
            self.obs.record(fleetio_obs::ObsEvent::GcStart {
                at: self.now,
                job: Some(ext_id),
                vssd: owner.0,
                channel: ch.0,
                chip,
                live_pages: live.len() as u32,
                emergency: false,
            });
        }
        self.detach_from_gsb(victim);
        let mut ops = std::mem::take(&mut self.gc_op_buf);
        ops.clear();
        for (page, lpa) in &live {
            let dst_ch = self.next_home_channel(dst_idx);
            let (dst_blk, dst_page) = self.append_home_page(dst_idx, dst_ch, *lpa);
            let ppa = fleetio_flash::addr::Ppa {
                block: dst_blk,
                page: dst_page,
            };
            self.vssds[dst_idx].map.set(*lpa, ppa);
            self.device.invalidate_page(victim, *page);
            ops.push((
                victim.channel.0,
                PageOp {
                    vssd: owner_idx,
                    read: true,
                    bytes: page_bytes,
                    chip: victim.chip,
                    req: None,
                    gc: Some(job),
                },
            ));
            ops.push((
                dst_blk.channel.0,
                PageOp {
                    vssd: dst_idx,
                    read: false,
                    bytes: page_bytes,
                    chip: dst_blk.chip,
                    req: None,
                    gc: Some(job),
                },
            ));
        }
        self.gc_jobs.get_mut(job).expect("job registered").remaining = ops.len() as u32;
        if ops.is_empty() {
            // Fully dead block: erase right away.
            self.gc_op_buf = ops;
            self.finish_gc_job(job);
            return;
        }
        let rank = priority.rank();
        let mut touched = std::mem::take(&mut self.gc_touched);
        touched.clear();
        for (channel, op) in ops.drain(..) {
            let tickets = self.vssds[op.vssd].cfg.tickets;
            let chan = &mut self.chans[usize::from(channel)];
            if !chan.stride.contains(op.vssd) {
                chan.stride.add_client(op.vssd, tickets);
                chan.members.push(op.vssd);
            }
            chan.queues[op.vssd][rank].push_back(op);
            chan.pending[rank] += 1;
            if !touched.contains(&channel) {
                touched.push(channel);
            }
        }
        self.gc_op_buf = ops;
        for &ch in &touched {
            self.try_dispatch(ch);
        }
        touched.clear();
        self.gc_touched = touched;
    }

    /// GC scheduling priority from space pressure. The default matches the
    /// foreground default (Medium) so GC keeps pace with a saturating
    /// writer via FIFO fairness instead of starving; when space is critical
    /// it escalates, and while pressure is far off it politely yields.
    fn gc_priority(&self, ch: ChannelId, chip: u16) -> Priority {
        let free = self.device.chip(ch, chip).free_fraction();
        if free < self.cfg.gc_free_threshold * 0.5 {
            Priority::High
        } else if free < self.cfg.gc_free_threshold {
            Priority::Medium
        } else {
            Priority::Low
        }
    }

    /// Called by the dispatcher when a GC page op completes.
    pub(crate) fn process_gc_op_done(&mut self, job: Handle) {
        let done = {
            let j = self.gc_jobs.get_mut(job).expect("GC op for unknown job");
            j.remaining -= 1;
            j.remaining == 0
        };
        if done {
            self.finish_gc_job(job);
        }
    }

    /// Erases the victim and schedules the job's completion.
    fn finish_gc_job(&mut self, job: Handle) {
        let j = self.gc_jobs[job];
        let erase = self.device.erase(self.now, j.victim.channel, j.victim.chip);
        let busy = erase.end.saturating_since(j.started);
        self.events.push(erase.end, Ev::GcDone { job, busy });
    }

    /// Picks a GC victim among the full blocks on `(ch, chip)`, preferring
    /// harvested/reclaimed blocks (per the HBT), then fewest live pages.
    fn select_victim(&self, ch: ChannelId, chip: u16) -> Option<BlockAddr> {
        let blocks = &self.chip_blocks[self.chip_slot(ch.0, chip)];
        // Sort key: harvested-class blocks first (false < true, so negate),
        // then fewest live pages (greedy).
        let mut best: Option<(BlockAddr, (bool, u32))> = None;
        for &blk in blocks {
            if self.block_meta_get(blk).is_none() {
                continue;
            }
            // A block already being collected must not be picked twice
            // (emergency GC ignores the per-chip in-progress guard).
            if self.gc_jobs.values().any(|j| j.victim == blk) {
                continue;
            }
            let state = self.device.chip(ch, chip).block(blk.block);
            let harvested = self.hbt.class(blk) == BlockClass::Harvested;
            // Eligible victims: full blocks, plus partially-written
            // harvested/reclaimed blocks (zombie gSB remnants would
            // otherwise leak as permanently-open blocks).
            let eligible = state.phase() == BlockPhase::Full
                || (harvested && state.phase() == BlockPhase::Open && state.written_count() > 0);
            if !eligible {
                continue;
            }
            let key = (!harvested, state.valid_count());
            if best.as_ref().is_none_or(|(_, k)| key < *k) {
                best = Some((blk, key));
            }
        }
        best.map(|(blk, _)| blk)
    }

    /// Detaches a victim from its ghost superblock at GC-bookkeeping time,
    /// so harvesters stop appending into it while its migration is queued.
    fn detach_from_gsb(&mut self, victim: BlockAddr) {
        let Some(gsb_id) = self.block_meta_get(victim).and_then(|m| m.gsb) else {
            return;
        };
        let emptied = match self.pool.get_mut(gsb_id) {
            Some(g) => {
                g.blocks.retain(|b| *b != victim);
                g.blocks.is_empty()
            }
            None => false,
        };
        if emptied {
            self.destroy_emptied_gsb(gsb_id);
        }
    }

    /// Returns an erased victim block to the device and scrubs engine
    /// metadata; shrinks/destroys its gSB if it had one.
    fn release_victim(&mut self, victim: BlockAddr) {
        self.device.release_block(victim);
        self.hbt.mark_regular(victim);
        let slot = self.chip_slot(victim.channel.0, victim.chip);
        self.chip_blocks[slot].retain(|b| *b != victim);
        let meta = self.block_meta_remove(victim);
        for v in &mut self.vssds {
            if v.open_blocks[slot] == Some(victim) {
                v.open_blocks[slot] = None;
            }
        }
        if let Some(gsb_id) = meta.and_then(|m| m.gsb) {
            let emptied = {
                match self.pool.get_mut(gsb_id) {
                    Some(g) => {
                        g.blocks.retain(|b| *b != victim);
                        g.blocks.is_empty()
                    }
                    None => false,
                }
            };
            if emptied {
                self.destroy_emptied_gsb(gsb_id);
            }
        }
    }

    /// Round-robin over a vSSD's home channels for GC migration targets.
    pub(crate) fn next_home_channel(&mut self, idx: usize) -> ChannelId {
        let v = &mut self.vssds[idx];
        let n = v.cfg.channels.len();
        let pos = v.stripe_pos % n;
        v.stripe_pos = (v.stripe_pos + 1) % v.stripe.len().max(1);
        v.cfg.channels[pos]
    }

    /// Handles GC completion: releases the victim, clears flags, records
    /// the busy time in the owner's window, and re-checks pressure.
    pub(crate) fn process_gc_done(&mut self, job: Handle, busy: SimDuration) {
        let j = self.gc_jobs.remove(job);
        self.release_victim(j.victim);
        if self.obs_on {
            self.obs.record(fleetio_obs::ObsEvent::GcEnd {
                at: self.now,
                job: j.ext_id,
                vssd: j.owner.0,
                channel: j.ch,
                chip: j.chip,
                busy,
            });
        }
        let idx = self.idx(j.owner);
        self.vssds[idx].window.record_gc(busy);
        if !j.owns_chip_slot {
            // Erase-only reclaims run outside the per-chip GC slot and
            // never set gc_active; they must not decrement it (masking a
            // concurrent real collection's In_GC state) nor retrigger a
            // second collection on a chip that already has one.
            return;
        }
        let slot = self.chip_slot(j.ch, j.chip);
        self.gc_running[slot] = false;
        self.vssds[idx].gc_active = self.vssds[idx].gc_active.saturating_sub(1);
        // Still under pressure? Run another pass.
        let channel = ChannelId(j.ch);
        if self.device.chip(channel, j.chip).free_fraction() < self.cfg.gc_free_threshold {
            self.run_gc(channel, j.chip, idx);
        }
    }

    /// Eagerly reclaims a harvested/reclaimed block the moment its last
    /// live page is invalidated (§3.6: loaned blocks return to their home
    /// vSSD). Without this, fully-dead gSB blocks would wait for ordinary
    /// GC pressure, which the 25 % lending floor prevents from building —
    /// stalling the harvest pipeline.
    pub(crate) fn maybe_reclaim_dead_harvested(&mut self, blk: BlockAddr) {
        if self.warming {
            return;
        }
        let Some(meta) = self.block_meta_get(blk) else {
            return;
        };
        let owner = meta.resource_owner;
        if self.hbt.class(blk) != BlockClass::Harvested {
            return;
        }
        let state = self.device.chip(blk.channel, blk.chip).block(blk.block);
        if state.phase() != BlockPhase::Full || state.valid_count() != 0 {
            return;
        }
        if self.gc_jobs.values().any(|j| j.victim == blk) {
            return;
        }
        self.device.note_gc_run();
        let ext_id = self.next_gc_job;
        self.next_gc_job += 1;
        let job = self.gc_jobs.insert(GcJob {
            ext_id,
            owner,
            ch: blk.channel.0,
            chip: blk.chip,
            victim: blk,
            remaining: 0,
            started: self.now,
            owns_chip_slot: false,
        });
        if self.obs_on {
            self.obs.record(fleetio_obs::ObsEvent::GcStart {
                at: self.now,
                job: Some(ext_id),
                vssd: owner.0,
                channel: blk.channel.0,
                chip: blk.chip,
                live_pages: 0,
                emergency: false,
            });
        }
        self.detach_from_gsb(blk);
        self.finish_gc_job(job);
    }

    /// Emergency synchronous GC: frees one block on `(ch, chip)` with
    /// immediate (resource-chained) migrations. Called only from the
    /// out-of-space allocation path; returns whether a block was freed.
    pub(crate) fn run_gc_emergency(&mut self, ch: ChannelId, chip: u16) -> bool {
        let Some(victim) = self.select_victim(ch, chip) else {
            return false;
        };
        self.device.note_gc_run();
        self.detach_from_gsb(victim);
        let page_bytes = u64::from(self.cfg.flash.page_bytes);
        let live: Vec<(u32, u64)> = self
            .device
            .chip(victim.channel, victim.chip)
            .block(victim.block)
            .valid_pages()
            .map(|(p, lpa)| (p, lpa.0))
            .collect();
        let data_owner = self
            .block_meta_get(victim)
            .map(|m| m.data_owner)
            .unwrap_or_else(|| self.vssds[0].cfg.id);
        let dst_idx = self.idx(data_owner);
        if self.obs_on {
            self.obs.record(fleetio_obs::ObsEvent::GcStart {
                at: self.now,
                job: None,
                vssd: data_owner.0,
                channel: ch.0,
                chip,
                live_pages: live.len() as u32,
                emergency: true,
            });
        }
        for (page, lpa) in live {
            let dst_ch = self.next_home_channel(dst_idx);
            let (dst_blk, dst_page) = self.append_home_page(dst_idx, dst_ch, lpa);
            let ppa = fleetio_flash::addr::Ppa {
                block: dst_blk,
                page: dst_page,
            };
            self.vssds[dst_idx].map.set(lpa, ppa);
            self.device.invalidate_page(victim, page);
            let _ = self.device.migrate_page(
                self.now,
                (victim.channel, victim.chip),
                (dst_blk.channel, dst_blk.chip),
                page_bytes,
            );
        }
        let _ = self.device.erase(self.now, victim.channel, victim.chip);
        self.release_victim(victim);
        true
    }
}
