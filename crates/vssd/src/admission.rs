//! Admission control for RL actions (§3.5 of the paper).
//!
//! RL agents act independently, but their `Harvest()` and
//! `Make_Harvestable()` actions execute on the shared SSD through an
//! admission-control stage that:
//!
//! 1. filters actions against provider-set per-vSSD permissions (e.g. spot
//!    VMs may be forbidden from harvesting),
//! 2. batches actions (50 ms batches by default) and reorders each batch to
//!    run `Make_Harvestable()` before `Harvest()`, maximizing harvestable
//!    supply and avoiding immediate reclamation,
//! 3. when harvest demand exceeds supply, ranks harvesters so vSSDs with
//!    fewer already-harvested resources go first (the paper's default
//!    fairness rule on top of FCFS).

use std::collections::BTreeMap;

use fleetio_des::SimDuration;

use crate::vssd::VssdId;

/// A harvest-related action submitted by an RL agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HarvestAction {
    /// Harvest `bytes_per_sec` of bandwidth from collocated vSSDs.
    Harvest {
        /// The acting vSSD.
        vssd: VssdId,
        /// Desired extra bandwidth (read + write combined, §3.3.2).
        bytes_per_sec: f64,
    },
    /// Make `bytes_per_sec` of this vSSD's bandwidth harvestable.
    MakeHarvestable {
        /// The acting vSSD.
        vssd: VssdId,
        /// Bandwidth offered to others; lowering it triggers reclamation.
        bytes_per_sec: f64,
    },
}

impl HarvestAction {
    /// The vSSD issuing the action.
    pub fn vssd(&self) -> VssdId {
        match *self {
            HarvestAction::Harvest { vssd, .. } | HarvestAction::MakeHarvestable { vssd, .. } => {
                vssd
            }
        }
    }

    /// The bandwidth argument.
    pub fn bytes_per_sec(&self) -> f64 {
        match *self {
            HarvestAction::Harvest { bytes_per_sec, .. }
            | HarvestAction::MakeHarvestable { bytes_per_sec, .. } => bytes_per_sec,
        }
    }
}

/// Per-vSSD provider permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Permissions {
    /// May this vSSD take `Harvest()` actions?
    pub allow_harvest: bool,
    /// May this vSSD take `Make_Harvestable()` actions?
    pub allow_make_harvestable: bool,
}

impl Default for Permissions {
    fn default() -> Self {
        Permissions {
            allow_harvest: true,
            allow_make_harvestable: true,
        }
    }
}

/// Contention policy applied when harvest demand exceeds supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContentionPolicy {
    /// First-come-first-serve, breaking contention in favour of vSSDs with
    /// fewer already-harvested resources (the paper's default).
    #[default]
    FcfsFewestHarvestedFirst,
    /// Strict submission order regardless of current holdings.
    StrictFcfs,
}

/// The admission-control stage.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    batch_interval: SimDuration,
    policy: ContentionPolicy,
    default_perms: Permissions,
    perms: BTreeMap<VssdId, Permissions>,
    pending: Vec<HarvestAction>,
    rejected: u64,
    admitted: u64,
}

impl AdmissionControl {
    /// Creates an admission controller with the paper's 50 ms batches,
    /// default-allow permissions and the default contention policy.
    pub fn new() -> Self {
        AdmissionControl {
            batch_interval: SimDuration::from_millis(50),
            policy: ContentionPolicy::default(),
            default_perms: Permissions::default(),
            perms: BTreeMap::new(),
            pending: Vec::new(),
            rejected: 0,
            admitted: 0,
        }
    }

    /// Overrides the batch interval (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_batch_interval(mut self, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "batch interval must be positive");
        self.batch_interval = interval;
        self
    }

    /// Overrides the contention policy (builder style).
    pub fn with_policy(mut self, policy: ContentionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets per-vSSD permissions; vSSDs without an entry use default-allow.
    pub fn set_permissions(&mut self, vssd: VssdId, perms: Permissions) {
        self.perms.insert(vssd, perms);
    }

    /// The configured batch interval.
    pub fn batch_interval(&self) -> SimDuration {
        self.batch_interval
    }

    /// Count of actions rejected by permission checks so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Count of actions admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Number of actions waiting for the next batch.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Enqueues an action for the next batch, applying permission checks
    /// immediately. Returns whether the action was accepted into the batch.
    pub fn submit(&mut self, action: HarvestAction) -> bool {
        let perms = self
            .perms
            .get(&action.vssd())
            .copied()
            .unwrap_or(self.default_perms);
        let allowed = match action {
            HarvestAction::Harvest { .. } => perms.allow_harvest,
            HarvestAction::MakeHarvestable { .. } => perms.allow_make_harvestable,
        };
        if allowed {
            self.pending.push(action);
        } else {
            self.rejected += 1;
        }
        allowed
    }

    /// Drains the current batch in execution order.
    ///
    /// `Make_Harvestable()` actions come first (submission order), then
    /// `Harvest()` actions ranked per the contention policy;
    /// `harvested_holdings` maps each vSSD to its currently harvested
    /// resource count (in gSB channels, sorted by id for binary search;
    /// absent vSSDs count as 0) and `supply_channels` is the total
    /// `n_chls` available in the pool *after* this batch's
    /// `Make_Harvestable()` actions execute (an estimate is fine — ranking
    /// only changes when demand exceeds it).
    pub fn drain_batch(
        &mut self,
        supply_channels: usize,
        harvested_holdings: &[(VssdId, usize)],
        channel_bytes_per_sec: f64,
    ) -> Vec<HarvestAction> {
        let pending = std::mem::take(&mut self.pending);
        let (mut makes, mut harvests): (Vec<_>, Vec<_>) = pending
            .into_iter()
            .partition(|a| matches!(a, HarvestAction::MakeHarvestable { .. }));

        let demand: usize = harvests
            .iter()
            .map(|a| (a.bytes_per_sec() / channel_bytes_per_sec).floor() as usize)
            .sum();
        if demand > supply_channels && self.policy == ContentionPolicy::FcfsFewestHarvestedFirst {
            // Stable sort keeps FCFS order among equal holders.
            harvests.sort_by_key(|a| {
                harvested_holdings
                    .binary_search_by_key(&a.vssd(), |(id, _)| *id)
                    .map_or(0, |pos| harvested_holdings[pos].1)
            });
        }
        self.admitted += (makes.len() + harvests.len()) as u64;
        makes.append(&mut harvests);
        makes
    }
}

impl Default for AdmissionControl {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harvest(v: u32, bw: f64) -> HarvestAction {
        HarvestAction::Harvest {
            vssd: VssdId(v),
            bytes_per_sec: bw,
        }
    }

    fn make(v: u32, bw: f64) -> HarvestAction {
        HarvestAction::MakeHarvestable {
            vssd: VssdId(v),
            bytes_per_sec: bw,
        }
    }

    const CH_BW: f64 = 64.0 * 1024.0 * 1024.0;

    #[test]
    fn batch_reorders_make_harvestable_first() {
        let mut ac = AdmissionControl::new();
        ac.submit(harvest(1, CH_BW));
        ac.submit(make(2, CH_BW));
        ac.submit(harvest(3, CH_BW));
        ac.submit(make(4, CH_BW));
        let batch = ac.drain_batch(10, &[], CH_BW);
        assert_eq!(batch.len(), 4);
        assert!(matches!(
            batch[0],
            HarvestAction::MakeHarvestable {
                vssd: VssdId(2),
                ..
            }
        ));
        assert!(matches!(
            batch[1],
            HarvestAction::MakeHarvestable {
                vssd: VssdId(4),
                ..
            }
        ));
        assert!(matches!(
            batch[2],
            HarvestAction::Harvest {
                vssd: VssdId(1),
                ..
            }
        ));
        assert!(matches!(
            batch[3],
            HarvestAction::Harvest {
                vssd: VssdId(3),
                ..
            }
        ));
        assert_eq!(ac.pending(), 0);
        assert_eq!(ac.admitted(), 4);
    }

    #[test]
    fn permissions_filter_actions() {
        let mut ac = AdmissionControl::new();
        ac.set_permissions(
            VssdId(1),
            Permissions {
                allow_harvest: false,
                allow_make_harvestable: true,
            },
        );
        assert!(!ac.submit(harvest(1, CH_BW)));
        assert!(ac.submit(make(1, CH_BW)));
        assert_eq!(ac.rejected(), 1);
        assert_eq!(ac.pending(), 1);
    }

    #[test]
    fn contention_ranks_fewest_holdings_first() {
        let mut ac = AdmissionControl::new();
        ac.submit(harvest(1, 2.0 * CH_BW));
        ac.submit(harvest(2, 2.0 * CH_BW));
        let holdings = [(VssdId(1), 3), (VssdId(2), 0)];
        // Demand (4 channels) exceeds supply (2): vssd2 (fewer holdings)
        // jumps ahead despite later submission.
        let batch = ac.drain_batch(2, &holdings, CH_BW);
        assert_eq!(batch[0].vssd(), VssdId(2));
        assert_eq!(batch[1].vssd(), VssdId(1));
    }

    #[test]
    fn no_contention_keeps_fcfs() {
        let mut ac = AdmissionControl::new();
        ac.submit(harvest(1, CH_BW));
        ac.submit(harvest(2, CH_BW));
        let holdings = [(VssdId(1), 5)];
        let batch = ac.drain_batch(10, &holdings, CH_BW);
        assert_eq!(batch[0].vssd(), VssdId(1));
    }

    #[test]
    fn strict_fcfs_ignores_holdings() {
        let mut ac = AdmissionControl::new().with_policy(ContentionPolicy::StrictFcfs);
        ac.submit(harvest(1, 2.0 * CH_BW));
        ac.submit(harvest(2, 2.0 * CH_BW));
        let holdings = [(VssdId(1), 9)];
        let batch = ac.drain_batch(1, &holdings, CH_BW);
        assert_eq!(batch[0].vssd(), VssdId(1));
    }

    #[test]
    fn default_batch_interval_is_50ms() {
        assert_eq!(
            AdmissionControl::new().batch_interval(),
            SimDuration::from_millis(50)
        );
    }

    #[test]
    fn action_accessors() {
        assert_eq!(harvest(7, 3.0).vssd(), VssdId(7));
        assert_eq!(make(7, 3.0).bytes_per_sec(), 3.0);
    }
}
