//! Tenant I/O requests and scheduling priorities.

use fleetio_des::{SimDuration, SimTime};

use crate::vssd::VssdId;

/// Unique id of a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Read from the vSSD.
    Read,
    /// Write to the vSSD.
    Write,
}

impl IoOp {
    /// Whether this is a read.
    pub fn is_read(self) -> bool {
        matches!(self, IoOp::Read)
    }
}

/// I/O scheduling priority (§3.3.2: the `Set_Priority(level)` action picks
/// one of these three levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Served only when no higher level is waiting.
    Low,
    /// The default level.
    #[default]
    Medium,
    /// Jumps ahead of both other levels.
    High,
}

impl Priority {
    /// All levels, highest first (dispatch scan order).
    pub const ALL_DESC: [Priority; 3] = [Priority::High, Priority::Medium, Priority::Low];

    /// Index with `High = 0`, used for queue arrays.
    pub fn rank(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Medium => 1,
            Priority::Low => 2,
        }
    }
}

/// One block-level I/O request issued by a tenant to its vSSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// The vSSD this request targets.
    pub vssd: VssdId,
    /// Read or write.
    pub op: IoOp,
    /// Byte offset within the vSSD's logical address space.
    pub offset: u64,
    /// Length in bytes (must be positive).
    pub len: u64,
    /// Submission time.
    pub arrival: SimTime,
}

impl IoRequest {
    /// Logical pages `[first, last]` touched by this request.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn page_span(&self, page_bytes: u64) -> (u64, u64) {
        assert!(self.len > 0, "request length must be positive");
        let first = self.offset / page_bytes;
        let last = (self.offset + self.len - 1) / page_bytes;
        (first, last)
    }

    /// Number of logical pages touched.
    pub fn page_count(&self, page_bytes: u64) -> u64 {
        let (first, last) = self.page_span(page_bytes);
        last - first + 1
    }
}

/// A completed request with its measured service quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedRequest {
    /// Id assigned at submission.
    pub id: RequestId,
    /// The vSSD the request targeted.
    pub vssd: VssdId,
    /// Read or write.
    pub op: IoOp,
    /// Byte offset within the vSSD's logical space.
    pub offset: u64,
    /// Length in bytes.
    pub len: u64,
    /// Submission time.
    pub arrival: SimTime,
    /// Time the first page op began service.
    pub service_start: SimTime,
    /// Time the last page op finished.
    pub completion: SimTime,
}

impl CompletedRequest {
    /// Full arrival-to-completion latency.
    pub fn latency(&self) -> SimDuration {
        self.completion.saturating_since(self.arrival)
    }

    /// Time spent queued before any page op started service.
    pub fn queue_delay(&self) -> SimDuration {
        self.service_start.saturating_since(self.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(offset: u64, len: u64) -> IoRequest {
        IoRequest {
            vssd: VssdId(0),
            op: IoOp::Read,
            offset,
            len,
            arrival: SimTime::ZERO,
        }
    }

    #[test]
    fn page_span_aligned() {
        let r = req(0, 16384);
        assert_eq!(r.page_span(16384), (0, 0));
        assert_eq!(r.page_count(16384), 1);
    }

    #[test]
    fn page_span_crossing_boundary() {
        let r = req(16000, 1000);
        assert_eq!(r.page_span(16384), (0, 1));
        assert_eq!(r.page_count(16384), 2);
    }

    #[test]
    fn page_span_large_request() {
        let r = req(32768, 65536);
        assert_eq!(r.page_span(16384), (2, 5));
        assert_eq!(r.page_count(16384), 4);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_panics() {
        let _ = req(0, 0).page_span(16384);
    }

    #[test]
    fn priority_order_and_rank() {
        assert!(Priority::High > Priority::Medium);
        assert!(Priority::Medium > Priority::Low);
        assert_eq!(Priority::High.rank(), 0);
        assert_eq!(Priority::default(), Priority::Medium);
        assert_eq!(Priority::ALL_DESC[0], Priority::High);
    }

    #[test]
    fn completed_request_latency_math() {
        let c = CompletedRequest {
            id: RequestId(1),
            vssd: VssdId(0),
            op: IoOp::Write,
            offset: 0,
            len: 4096,
            arrival: SimTime::from_micros(100),
            service_start: SimTime::from_micros(150),
            completion: SimTime::from_micros(400),
        };
        assert_eq!(c.latency().as_micros(), 300);
        assert_eq!(c.queue_delay().as_micros(), 50);
    }
}
