//! Token-bucket I/O rate limiting.
//!
//! Software-isolated vSSDs throttle each tenant with a token bucket, the
//! mechanism the paper cites from IOFlow and blk-throttle. Tokens are
//! bytes: a request may dispatch when the bucket holds at least its size
//! (with a small overdraft so large requests are never starved), and the
//! bucket refills continuously at the configured rate.

use fleetio_des::SimTime;

/// A byte-denominated token bucket.
///
/// # Example
///
/// ```
/// use fleetio_des::SimTime;
/// use fleetio_vssd::token_bucket::TokenBucket;
///
/// // 1 MB/s with a 64 KB burst.
/// let mut tb = TokenBucket::new(1_000_000.0, 64_000.0);
/// assert!(tb.try_take(SimTime::ZERO, 64_000));
/// assert!(!tb.try_take(SimTime::ZERO, 64_000)); // bucket drained
/// assert!(tb.try_take(SimTime::from_millis(64), 64_000)); // refilled
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Refill rate, bytes per second.
    rate: f64,
    /// Maximum stored tokens (burst size), bytes.
    burst: f64,
    /// Current tokens.
    tokens: f64,
    /// Last refill instant.
    last: SimTime,
}

impl TokenBucket {
    /// Creates a full bucket.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` and `burst` are strictly positive and finite.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        assert!(burst.is_finite() && burst > 0.0, "burst must be positive");
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    /// The refill rate in bytes per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Brings the token count up to date at `now`.
    fn refill(&mut self, now: SimTime) {
        if now > self.last {
            let dt = now.saturating_since(self.last).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
            self.last = now;
        }
        #[cfg(feature = "audit")]
        debug_assert!(
            self.tokens <= self.burst,
            "token balance {} exceeds burst cap {}",
            self.tokens,
            self.burst
        );
    }

    /// Current token count at `now`.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Whether a [`TokenBucket::try_take`] of `bytes` at `now` would
    /// succeed, without consuming tokens.
    pub fn would_allow(&mut self, now: SimTime, bytes: u64) -> bool {
        self.refill(now);
        let need = bytes as f64;
        self.tokens >= need || (need > self.burst && self.tokens >= self.burst)
    }

    /// Attempts to take `bytes` tokens at `now`.
    ///
    /// Requests larger than the burst size are allowed whenever the bucket
    /// is full (the balance goes negative), so a single oversized request
    /// cannot deadlock; it simply forces a longer subsequent wait.
    pub fn try_take(&mut self, now: SimTime, bytes: u64) -> bool {
        self.refill(now);
        let need = bytes as f64;
        if self.tokens >= need || (need > self.burst && self.tokens >= self.burst) {
            self.tokens -= need;
            // The balance may only go negative via the oversized-request
            // overdraft; a burst-sized-or-smaller grant never overdraws.
            #[cfg(feature = "audit")]
            debug_assert!(
                need > self.burst || self.tokens >= 0.0,
                "token bucket overdrawn to {} by a within-burst take of {need}",
                self.tokens
            );
            true
        } else {
            false
        }
    }

    /// Earliest time at which `bytes` tokens will be available, given no
    /// intervening consumption.
    pub fn ready_at(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.refill(now);
        let need = (bytes as f64).min(self.burst);
        if self.tokens >= need {
            return now;
        }
        let deficit = need - self.tokens;
        now + fleetio_des::SimDuration::from_secs_f64(deficit / self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::SimDuration;

    #[test]
    fn starts_full_and_drains() {
        let mut tb = TokenBucket::new(100.0, 50.0);
        assert!(tb.try_take(SimTime::ZERO, 50));
        assert!(!tb.try_take(SimTime::ZERO, 1));
    }

    #[test]
    fn refills_at_rate() {
        let mut tb = TokenBucket::new(1000.0, 100.0);
        assert!(tb.try_take(SimTime::ZERO, 100));
        // After 50 ms at 1000 B/s → 50 tokens.
        let t = SimTime::from_millis(50);
        assert!((tb.available(t) - 50.0).abs() < 1e-6);
        assert!(tb.try_take(t, 50));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut tb = TokenBucket::new(1000.0, 100.0);
        let t = SimTime::from_secs(10);
        assert!((tb.available(t) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn oversized_request_uses_overdraft() {
        let mut tb = TokenBucket::new(1000.0, 100.0);
        assert!(tb.try_take(SimTime::ZERO, 500)); // burst-full → allowed
                                                  // Deep in debt now; refilling 100 ms gives 100 tokens = -300.
        assert!(!tb.try_take(SimTime::from_millis(100), 1));
        // After 500 ms total the debt clears (-400 + 500 = 100 capped).
        assert!(tb.try_take(SimTime::from_millis(500), 50));
    }

    #[test]
    fn ready_at_predicts_refill() {
        let mut tb = TokenBucket::new(1000.0, 100.0);
        assert!(tb.try_take(SimTime::ZERO, 100));
        let at = tb.ready_at(SimTime::ZERO, 100);
        assert_eq!(at, SimTime::ZERO + SimDuration::from_millis(100));
        assert!(tb.try_take(at, 100));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = TokenBucket::new(0.0, 1.0);
    }
}
