//! The Harvested Block Table (HBT, §3.7 of the paper).
//!
//! FleetIO's GC prioritizes blocks that were harvested by another vSSD or
//! reclaimed from a destroyed gSB over a vSSD's regular blocks. The paper
//! tracks this with one bit per physical block (regular = 0,
//! harvested/reclaimed = 1), costing at most 0.5 MB for a 1 TB SSD with
//! 4 MB blocks. The table below is exactly that: a dense bitmap over the
//! device geometry, so the per-overwrite and per-victim-scan class checks
//! on the engine's hot paths are a shift-and-mask, not a tree walk.

use fleetio_flash::addr::BlockAddr;

/// Classification of a physical block for GC purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockClass {
    /// A block in normal vSSD use.
    Regular,
    /// A block inside a (possibly reclaimed) ghost superblock; GC migrates
    /// these first.
    Harvested,
}

/// One-bit-per-block table of harvested/reclaimed blocks, laid out over a
/// fixed device geometry.
///
/// # Example
///
/// ```
/// use fleetio_flash::addr::{BlockAddr, ChannelId};
/// use fleetio_vssd::hbt::{BlockClass, HarvestedBlockTable};
///
/// let mut hbt = HarvestedBlockTable::new(2, 4, 64);
/// let blk = BlockAddr { channel: ChannelId(0), chip: 0, block: 7 };
/// assert_eq!(hbt.class(blk), BlockClass::Regular);
/// hbt.mark_harvested(blk);
/// assert_eq!(hbt.class(blk), BlockClass::Harvested);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HarvestedBlockTable {
    bits: Vec<u64>,
    chips_per_channel: u16,
    blocks_per_chip: u32,
    count: usize,
}

impl HarvestedBlockTable {
    /// Creates a table for `channels × chips_per_channel × blocks_per_chip`
    /// physical blocks, all regular.
    pub fn new(channels: u16, chips_per_channel: u16, blocks_per_chip: u32) -> Self {
        let blocks =
            usize::from(channels) * usize::from(chips_per_channel) * blocks_per_chip as usize;
        HarvestedBlockTable {
            bits: vec![0; blocks.div_ceil(64)],
            chips_per_channel,
            blocks_per_chip,
            count: 0,
        }
    }

    #[inline]
    fn index(&self, block: BlockAddr) -> usize {
        (usize::from(block.channel.0) * usize::from(self.chips_per_channel)
            + usize::from(block.chip))
            * self.blocks_per_chip as usize
            + block.block as usize
    }

    /// The class of `block`.
    #[inline]
    pub fn class(&self, block: BlockAddr) -> BlockClass {
        let i = self.index(block);
        if self.bits[i / 64] >> (i % 64) & 1 != 0 {
            BlockClass::Harvested
        } else {
            BlockClass::Regular
        }
    }

    /// Marks `block` as harvested/reclaimed. The gSB manager calls this for
    /// every block of a gSB at creation time.
    pub fn mark_harvested(&mut self, block: BlockAddr) {
        let i = self.index(block);
        let (word, mask) = (i / 64, 1u64 << (i % 64));
        if self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.count += 1;
        }
    }

    /// Marks `block` regular again. GC calls this after erasing the block.
    pub fn mark_regular(&mut self, block: BlockAddr) {
        let i = self.index(block);
        let (word, mask) = (i / 64, 1u64 << (i % 64));
        if self.bits[word] & mask != 0 {
            self.bits[word] &= !mask;
            self.count -= 1;
        }
    }

    /// Number of blocks currently marked harvested/reclaimed.
    pub fn harvested_count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_flash::addr::ChannelId;

    fn table() -> HarvestedBlockTable {
        HarvestedBlockTable::new(2, 2, 32)
    }

    fn blk(b: u32) -> BlockAddr {
        BlockAddr {
            channel: ChannelId(0),
            chip: 0,
            block: b,
        }
    }

    #[test]
    fn default_class_is_regular() {
        let hbt = table();
        assert_eq!(hbt.class(blk(0)), BlockClass::Regular);
        assert_eq!(hbt.harvested_count(), 0);
    }

    #[test]
    fn mark_and_clear_roundtrip() {
        let mut hbt = table();
        hbt.mark_harvested(blk(1));
        hbt.mark_harvested(blk(2));
        assert_eq!(hbt.harvested_count(), 2);
        assert_eq!(hbt.class(blk(1)), BlockClass::Harvested);
        hbt.mark_regular(blk(1));
        assert_eq!(hbt.class(blk(1)), BlockClass::Regular);
        assert_eq!(hbt.class(blk(2)), BlockClass::Harvested);
    }

    #[test]
    fn marks_are_idempotent() {
        let mut hbt = table();
        hbt.mark_harvested(blk(1));
        hbt.mark_harvested(blk(1));
        assert_eq!(hbt.harvested_count(), 1);
        hbt.mark_regular(blk(1));
        hbt.mark_regular(blk(1));
        assert_eq!(hbt.harvested_count(), 0);
    }

    #[test]
    fn distinct_chips_and_channels_do_not_alias() {
        let mut hbt = table();
        let a = BlockAddr {
            channel: ChannelId(0),
            chip: 1,
            block: 5,
        };
        let b = BlockAddr {
            channel: ChannelId(1),
            chip: 0,
            block: 5,
        };
        hbt.mark_harvested(a);
        assert_eq!(hbt.class(a), BlockClass::Harvested);
        assert_eq!(hbt.class(b), BlockClass::Regular);
        assert_eq!(hbt.class(blk(5)), BlockClass::Regular);
    }
}
