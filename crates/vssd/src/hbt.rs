//! The Harvested Block Table (HBT, §3.7 of the paper).
//!
//! FleetIO's GC prioritizes blocks that were harvested by another vSSD or
//! reclaimed from a destroyed gSB over a vSSD's regular blocks. The paper
//! tracks this with one bit per physical block (regular = 0,
//! harvested/reclaimed = 1), costing at most 0.5 MB for a 1 TB SSD with 4 MB
//! blocks; the table below stores the same bit keyed by block address.

use std::collections::BTreeSet;

use fleetio_flash::addr::BlockAddr;

/// Classification of a physical block for GC purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockClass {
    /// A block in normal vSSD use.
    Regular,
    /// A block inside a (possibly reclaimed) ghost superblock; GC migrates
    /// these first.
    Harvested,
}

/// One-bit-per-block table of harvested/reclaimed blocks.
///
/// # Example
///
/// ```
/// use fleetio_flash::addr::{BlockAddr, ChannelId};
/// use fleetio_vssd::hbt::{BlockClass, HarvestedBlockTable};
///
/// let mut hbt = HarvestedBlockTable::new();
/// let blk = BlockAddr { channel: ChannelId(0), chip: 0, block: 7 };
/// assert_eq!(hbt.class(blk), BlockClass::Regular);
/// hbt.mark_harvested(blk);
/// assert_eq!(hbt.class(blk), BlockClass::Harvested);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HarvestedBlockTable {
    harvested: BTreeSet<BlockAddr>,
}

impl HarvestedBlockTable {
    /// Creates an empty table (all blocks regular).
    pub fn new() -> Self {
        Self::default()
    }

    /// The class of `block`.
    pub fn class(&self, block: BlockAddr) -> BlockClass {
        if self.harvested.contains(&block) {
            BlockClass::Harvested
        } else {
            BlockClass::Regular
        }
    }

    /// Marks `block` as harvested/reclaimed. The gSB manager calls this for
    /// every block of a gSB at creation time.
    pub fn mark_harvested(&mut self, block: BlockAddr) {
        self.harvested.insert(block);
    }

    /// Marks `block` regular again. GC calls this after erasing the block.
    pub fn mark_regular(&mut self, block: BlockAddr) {
        self.harvested.remove(&block);
    }

    /// Number of blocks currently marked harvested/reclaimed.
    pub fn harvested_count(&self) -> usize {
        self.harvested.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_flash::addr::ChannelId;

    fn blk(b: u32) -> BlockAddr {
        BlockAddr {
            channel: ChannelId(0),
            chip: 0,
            block: b,
        }
    }

    #[test]
    fn default_class_is_regular() {
        let hbt = HarvestedBlockTable::new();
        assert_eq!(hbt.class(blk(0)), BlockClass::Regular);
        assert_eq!(hbt.harvested_count(), 0);
    }

    #[test]
    fn mark_and_clear_roundtrip() {
        let mut hbt = HarvestedBlockTable::new();
        hbt.mark_harvested(blk(1));
        hbt.mark_harvested(blk(2));
        assert_eq!(hbt.harvested_count(), 2);
        assert_eq!(hbt.class(blk(1)), BlockClass::Harvested);
        hbt.mark_regular(blk(1));
        assert_eq!(hbt.class(blk(1)), BlockClass::Regular);
        assert_eq!(hbt.class(blk(2)), BlockClass::Harvested);
    }

    #[test]
    fn marks_are_idempotent() {
        let mut hbt = HarvestedBlockTable::new();
        hbt.mark_harvested(blk(1));
        hbt.mark_harvested(blk(1));
        assert_eq!(hbt.harvested_count(), 1);
        hbt.mark_regular(blk(1));
        hbt.mark_regular(blk(1));
        assert_eq!(hbt.harvested_count(), 0);
    }
}
