//! Whole-engine invariants under randomized multi-tenant load, with and
//! without harvesting: block accounting must always balance and every
//! request must eventually complete.

use fleetio_des::rng::{Rng, SmallRng};
use fleetio_des::{SimDuration, SimTime};
use fleetio_flash::addr::ChannelId;
use fleetio_flash::block::BlockPhase;
use fleetio_flash::config::FlashConfig;
use fleetio_vssd::engine::{Engine, EngineConfig};
use fleetio_vssd::request::{IoOp, IoRequest};
use fleetio_vssd::vssd::{VssdConfig, VssdId};

const PAGE: u64 = 16 * 1024;

fn engine() -> Engine {
    let cfg = EngineConfig {
        flash: FlashConfig::training_test(),
        ..Default::default()
    };
    Engine::new(
        cfg,
        vec![
            VssdConfig::hardware(VssdId(0), (0..2).map(ChannelId).collect()),
            VssdConfig::hardware(VssdId(1), (2..4).map(ChannelId).collect()),
        ],
    )
}

/// Counts physical blocks by phase across the device.
fn block_census(e: &Engine) -> (usize, usize, usize) {
    let cfg = e.config().flash.clone();
    let (mut free, mut open, mut full) = (0, 0, 0);
    for ch in 0..cfg.channels {
        for chip in 0..cfg.chips_per_channel {
            let cb = e.device().chip(ChannelId(ch), chip);
            for b in 0..cb.len() as u32 {
                match cb.block(b).phase() {
                    BlockPhase::Free => free += 1,
                    BlockPhase::Open => open += 1,
                    BlockPhase::Full => full += 1,
                }
            }
        }
    }
    (free, open, full)
}

/// Randomized reads/writes with periodic harvest-level changes: all
/// requests complete, the block census always covers the device, and
/// live-page accounting stays consistent.
#[test]
fn random_load_preserves_block_accounting() {
    let mut rng = SmallRng::seed_from_u64(0xacc7);
    for _case in 0..12 {
        let n_ops = rng.gen_range(50usize..250);
        let ops: Vec<(u8, u64, u64)> = (0..n_ops)
            .map(|_| {
                (
                    rng.gen_range(0u32..4) as u8,
                    rng.gen_range(0u64..600),
                    rng.gen_range(1u64..5),
                )
            })
            .collect();
        let harvest_period = rng.gen_range(10usize..40);
        let mut e = engine();
        e.warm_up(VssdId(0), 0.3);
        e.warm_up(VssdId(1), 0.3);
        let total_blocks = e.config().flash.total_blocks() as usize;
        let mut t = 0u64;
        let mut submitted = 0u64;
        for (i, (kind, lpa, pages)) in ops.iter().enumerate() {
            if i % harvest_period == 0 {
                let level = (i / harvest_period) % 3;
                e.set_harvestable_target(VssdId(0), level);
                e.set_harvest_target(VssdId(1), level);
            }
            let vssd = VssdId(u32::from(kind % 2));
            let op = if *kind < 2 { IoOp::Write } else { IoOp::Read };
            e.submit(IoRequest {
                vssd,
                op,
                offset: *lpa * PAGE,
                len: *pages * PAGE,
                arrival: SimTime::from_micros(t),
            });
            submitted += 1;
            t += 400;
        }
        e.run_until(SimTime::from_micros(t) + SimDuration::from_secs(5));

        let done = e.drain_completed();
        assert_eq!(done.len() as u64, submitted, "lost requests");

        let (free, open, full) = block_census(&e);
        assert_eq!(free + open + full, total_blocks, "block census mismatch");

        // No channel queue left behind.
        for id in [VssdId(0), VssdId(1)] {
            assert_eq!(e.queued_ops(id), 0, "stuck ops for {id}");
        }
    }
}

/// Requests never complete before they arrive, and queue delay never
/// exceeds total latency.
#[test]
fn completion_times_are_causal() {
    let mut rng = SmallRng::seed_from_u64(0x00ca_05a1);
    for _case in 0..12 {
        let n_ops = rng.gen_range(30usize..120);
        let mut e = engine();
        let mut t = 0u64;
        for _ in 0..n_ops {
            let lpa = rng.gen_range(0u64..400);
            let pages = rng.gen_range(1u64..4);
            e.submit(IoRequest {
                vssd: VssdId(0),
                op: IoOp::Write,
                offset: lpa * PAGE,
                len: pages * PAGE,
                arrival: SimTime::from_micros(t),
            });
            t += 250;
        }
        e.run_until(SimTime::from_micros(t) + SimDuration::from_secs(3));
        for c in e.drain_completed() {
            assert!(c.completion >= c.arrival);
            assert!(c.service_start >= c.arrival);
            assert!(c.completion >= c.service_start);
            assert!(c.queue_delay() <= c.latency());
        }
    }
}

#[test]
fn harvest_cycle_returns_all_blocks_eventually() {
    let mut e = engine();
    // Lend, harvest, write through, release, and let GC/eager reclaim
    // return everything.
    e.set_harvestable_target(VssdId(0), 2);
    e.set_harvest_target(VssdId(1), 2);
    let mut t = 0u64;
    for i in 0..800u64 {
        e.submit(IoRequest {
            vssd: VssdId(1),
            op: IoOp::Write,
            offset: (i % 500) * PAGE,
            len: PAGE,
            arrival: SimTime::from_micros(t),
        });
        t += 300;
    }
    e.run_until(SimTime::from_micros(t) + SimDuration::from_secs(2));
    e.set_harvest_target(VssdId(1), 0);
    e.set_harvestable_target(VssdId(0), 0);
    // Overwrite everything so loaned blocks die and return.
    for i in 0..800u64 {
        let at = e.now() + SimDuration::from_micros(300 * (i + 1));
        e.submit(IoRequest {
            vssd: VssdId(1),
            op: IoOp::Write,
            offset: (i % 500) * PAGE,
            len: PAGE,
            arrival: at,
        });
    }
    e.run_until(e.now() + SimDuration::from_secs(10));
    let _ = e.drain_completed();
    // The home vSSD's snapshot shows nothing harvestable or harvested.
    assert_eq!(e.snapshot(VssdId(0)).harvestable_channels, 0);
    assert_eq!(e.snapshot(VssdId(1)).harvested_channels, 0);
    let (free, open, full) = block_census(&e);
    assert_eq!(free + open + full, e.config().flash.total_blocks() as usize);
}
