//! End-to-end engine tests: I/O flow, priorities, GC, harvesting.

use fleetio_des::{SimDuration, SimTime};
use fleetio_flash::addr::ChannelId;
use fleetio_flash::config::FlashConfig;
use fleetio_vssd::admission::HarvestAction;
use fleetio_vssd::engine::{Engine, EngineConfig};
use fleetio_vssd::request::{IoOp, IoRequest, Priority};
use fleetio_vssd::vssd::{VssdConfig, VssdId};

const PAGE: u64 = 16 * 1024;

fn small_engine(vssds: Vec<VssdConfig>) -> Engine {
    let cfg = EngineConfig {
        flash: FlashConfig::small_test(),
        ..Default::default()
    };
    Engine::new(cfg, vssds)
}

fn two_tenant_engine() -> Engine {
    small_engine(vec![
        VssdConfig::hardware(VssdId(0), vec![ChannelId(0), ChannelId(1)]),
        VssdConfig::hardware(VssdId(1), vec![ChannelId(2), ChannelId(3)]),
    ])
}

fn req(vssd: u32, op: IoOp, offset: u64, len: u64, at_us: u64) -> IoRequest {
    IoRequest {
        vssd: VssdId(vssd),
        op,
        offset,
        len,
        arrival: SimTime::from_micros(at_us),
    }
}

#[test]
fn single_write_completes_with_program_latency() {
    let mut e = two_tenant_engine();
    e.submit(req(0, IoOp::Write, 0, PAGE, 0));
    e.run_until(SimTime::from_millis(10));
    let done = e.drain_completed();
    assert_eq!(done.len(), 1);
    let lat = done[0].latency().as_micros();
    // Transfer (~244 µs) + program (400 µs).
    assert!((600..=700).contains(&lat), "write latency {lat}us");
}

#[test]
fn single_read_completes_with_read_latency() {
    let mut e = two_tenant_engine();
    e.submit(req(0, IoOp::Write, 0, PAGE, 0));
    e.run_until(SimTime::from_millis(10));
    e.drain_completed();
    e.submit(req(0, IoOp::Read, 0, 4096, 10_000));
    e.run_until(SimTime::from_millis(20));
    let done = e.drain_completed();
    assert_eq!(done.len(), 1);
    let lat = done[0].latency().as_micros();
    // 50 µs cell read + ~61 µs transfer of 4 KiB.
    assert!((100..=130).contains(&lat), "read latency {lat}us");
}

#[test]
fn large_write_stripes_across_home_channels() {
    let mut e = two_tenant_engine();
    // 8 pages: with 2 home channels, both should see traffic.
    e.submit(req(0, IoOp::Write, 0, 8 * PAGE, 0));
    e.run_until(SimTime::from_millis(50));
    let done = e.drain_completed();
    assert_eq!(done.len(), 1);
    let moved0 = e.device().channel(ChannelId(0)).bytes_moved();
    let moved1 = e.device().channel(ChannelId(1)).bytes_moved();
    assert_eq!(moved0, 4 * PAGE);
    assert_eq!(moved1, 4 * PAGE);
    // Hardware isolation: the other tenant's channels stay silent.
    assert_eq!(e.device().channel(ChannelId(2)).bytes_moved(), 0);
}

#[test]
fn striped_write_is_faster_than_serial() {
    let mut e = two_tenant_engine();
    e.submit(req(0, IoOp::Write, 0, 8 * PAGE, 0));
    e.run_until(SimTime::from_millis(50));
    let done = e.drain_completed();
    let lat = done[0].latency();
    // Serial on one channel would take ≥ 8 × 244 µs ≈ 1.95 ms of transfers.
    // Two channels + pipelining must beat that comfortably.
    assert!(
        lat < SimDuration::from_micros(1600),
        "striped latency {lat} not faster than serial"
    );
}

#[test]
fn reads_of_written_data_go_to_mapped_channels() {
    let mut e = two_tenant_engine();
    e.submit(req(0, IoOp::Write, 0, 4 * PAGE, 0));
    e.run_until(SimTime::from_millis(10));
    e.drain_completed();
    let before0 = e.device().channel(ChannelId(0)).bytes_moved();
    e.submit(req(0, IoOp::Read, 0, 4 * PAGE, 10_000));
    e.run_until(SimTime::from_millis(30));
    assert_eq!(e.drain_completed().len(), 1);
    assert!(e.device().channel(ChannelId(0)).bytes_moved() > before0);
}

#[test]
fn high_priority_jumps_queue() {
    // One channel, two tenants sharing it (software isolation layout).
    let mut e = small_engine(vec![
        VssdConfig::software(VssdId(0), vec![ChannelId(0)]),
        VssdConfig::software(VssdId(1), vec![ChannelId(0)]),
    ]);
    e.set_priority(VssdId(1), Priority::High);
    // Flood from tenant 0 (low), then a single read from tenant 1 (high).
    e.set_priority(VssdId(0), Priority::Low);
    for i in 0..40 {
        e.submit(req(0, IoOp::Write, i * PAGE, PAGE, 0));
    }
    // Write something for tenant 1 to read first.
    e.submit(req(1, IoOp::Write, 0, PAGE, 0));
    e.run_until(SimTime::from_micros(1));
    e.submit(req(1, IoOp::Read, 0, 4096, 100));
    e.run_until(SimTime::from_secs(1));
    let done = e.drain_completed();
    let read = done
        .iter()
        .find(|c| c.vssd == VssdId(1) && c.op == IoOp::Read)
        .expect("read completed");
    // The read overtakes the ~40-deep write backlog: its latency must be far
    // below the full drain time (40 × 644 µs ≈ 26 ms).
    assert!(
        read.latency() < SimDuration::from_millis(5),
        "high-priority read waited {}",
        read.latency()
    );
}

#[test]
fn low_priority_still_progresses() {
    let mut e = small_engine(vec![
        VssdConfig::software(VssdId(0), vec![ChannelId(0)]),
        VssdConfig::software(VssdId(1), vec![ChannelId(0)]),
    ]);
    e.set_priority(VssdId(0), Priority::Low);
    for i in 0..10 {
        e.submit(req(0, IoOp::Write, i * PAGE, PAGE, 0));
        e.submit(req(1, IoOp::Write, i * PAGE, PAGE, 0));
    }
    e.run_until(SimTime::from_secs(1));
    let done = e.drain_completed();
    assert_eq!(done.iter().filter(|c| c.vssd == VssdId(0)).count(), 10);
    assert_eq!(done.iter().filter(|c| c.vssd == VssdId(1)).count(), 10);
}

#[test]
fn token_bucket_throttles_software_isolated_tenant() {
    // Tenant 0 limited to ~1 page per 10 ms.
    let rate = PAGE as f64 * 100.0;
    let mut e = small_engine(vec![
        VssdConfig::software(VssdId(0), vec![ChannelId(0)]).with_rate_limit(rate)
    ]);
    for i in 0..50 {
        e.submit(req(0, IoOp::Write, i * PAGE, PAGE, 0));
    }
    e.run_until(SimTime::from_millis(200));
    let done = e.drain_completed();
    // Unthrottled, 50 pages need ~50 × 244 µs ≈ 12 ms of bus time. With the
    // limiter, ~100 pages/s → about 20 ± burst in 200 ms.
    let n = done.len();
    assert!((15..=30).contains(&n), "throttled completions: {n}");
}

#[test]
fn slo_violations_are_counted() {
    let mut e =
        small_engine(vec![VssdConfig::hardware(VssdId(0), vec![ChannelId(0)])
            .with_slo(SimDuration::from_micros(10))]);
    e.submit(req(0, IoOp::Write, 0, PAGE, 0));
    e.run_until(SimTime::from_millis(5));
    e.drain_completed();
    let w = e.finish_window(VssdId(0));
    assert_eq!(w.total_ops, 1);
    assert!((w.slo_violation_rate - 1.0).abs() < 1e-9);
    assert_eq!(e.cumulative(VssdId(0)).slo_violations, 1);
}

#[test]
fn window_summary_reports_bandwidth() {
    let mut e = two_tenant_engine();
    for i in 0..16 {
        e.submit(req(0, IoOp::Write, i * PAGE, PAGE, i * 100));
    }
    e.run_until(SimTime::from_secs(1));
    e.drain_completed();
    let w = e.finish_window(VssdId(0));
    assert_eq!(w.total_ops, 16);
    let expect = 16.0 * PAGE as f64; // over 1 s
    assert!((w.avg_bandwidth - expect).abs() / expect < 1e-9);
    assert!(w.read_ratio < 1e-12);
}

#[test]
fn gc_triggers_under_pressure_and_frees_blocks() {
    // Single channel, small chip: fill far past the logical share with
    // overwrites to force GC.
    let mut e = small_engine(vec![VssdConfig::hardware(VssdId(0), vec![ChannelId(0)])]);
    // Logical space of 1 channel × 2 chips × 12 blocks × 32 pages = 768
    // pages. First fill a 400-page working set, then overwrite it in a
    // scattered order so GC victims retain some live pages (forcing
    // migrations rather than pure erases).
    let mut t = 0u64;
    for i in 0..400u64 {
        e.submit(req(0, IoOp::Write, i * PAGE, PAGE, t));
        t += 300;
    }
    // LCG-scrambled overwrites spread invalidations thinly across blocks.
    let mut x: u64 = 12345;
    for _ in 0..1200u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let lpa = (x >> 33) % 400;
        e.submit(req(0, IoOp::Write, lpa * PAGE, PAGE, t));
        t += 300;
    }
    e.run_until(SimTime::from_micros(t + 3_000_000));
    let stats = e.device().stats();
    assert!(stats.gc_runs > 0, "GC never ran");
    assert!(stats.erases > 0, "no erases");
    assert!(stats.gc_migrated_bytes > 0, "no migrations");
    // WAF must be sane: > 1 because of migrations, < 3 for this pattern.
    let waf = stats.waf().unwrap();
    assert!(waf > 1.0 && waf < 3.0, "waf {waf}");
    // All requests still completed.
    assert_eq!(e.drain_completed().len(), 400 + 1200);
}

#[test]
fn make_harvestable_creates_pool_supply() {
    let mut e = two_tenant_engine();
    e.set_harvestable_target(VssdId(0), 2);
    let snap = e.snapshot(VssdId(0));
    assert_eq!(snap.harvestable_channels, 2);
    // Harvested blocks marked in HBT but not yet harvested by anyone.
    assert_eq!(e.snapshot(VssdId(1)).harvested_channels, 0);
}

#[test]
fn harvest_extends_writer_striping() {
    let mut e = two_tenant_engine();
    e.set_harvestable_target(VssdId(0), 2);
    e.set_harvest_target(VssdId(1), 2);
    assert_eq!(e.snapshot(VssdId(1)).harvested_channels, 2);
    // Tenant 1 writes now land on tenant 0's channels too.
    for i in 0..32 {
        e.submit(req(1, IoOp::Write, i * PAGE, PAGE, i * 10));
    }
    e.run_until(SimTime::from_millis(100));
    assert_eq!(e.drain_completed().len(), 32);
    let outside = e.device().channel(ChannelId(0)).bytes_moved()
        + e.device().channel(ChannelId(1)).bytes_moved();
    assert!(outside > 0, "harvester never used harvested channels");
}

#[test]
fn harvested_bandwidth_increases_throughput() {
    // Tenant 1 has one home channel; harvesting two more should speed a
    // large burst up substantially.
    let run = |harvest: bool| -> SimTime {
        let mut e = small_engine(vec![
            VssdConfig::hardware(VssdId(0), vec![ChannelId(0), ChannelId(1), ChannelId(2)]),
            VssdConfig::hardware(VssdId(1), vec![ChannelId(3)]),
        ]);
        if harvest {
            e.set_harvestable_target(VssdId(0), 2);
            e.set_harvest_target(VssdId(1), 2);
        }
        for i in 0..64 {
            e.submit(req(1, IoOp::Write, i * PAGE, PAGE, 0));
        }
        e.run_until(SimTime::from_secs(2));
        let done = e.drain_completed();
        assert_eq!(done.len(), 64);
        done.iter().map(|c| c.completion).max().unwrap()
    };
    let slow = run(false);
    let fast = run(true);
    assert!(
        fast.as_micros() * 3 < slow.as_micros() * 2,
        "harvesting too weak: {} vs {}",
        fast.as_micros(),
        slow.as_micros()
    );
}

#[test]
fn harvest_target_release_returns_unused_gsb() {
    let mut e = two_tenant_engine();
    e.set_harvestable_target(VssdId(0), 2);
    e.set_harvest_target(VssdId(1), 2);
    assert_eq!(e.snapshot(VssdId(1)).harvested_channels, 2);
    // Release without ever writing: gSB returns to home cleanly.
    e.set_harvest_target(VssdId(1), 0);
    assert_eq!(e.snapshot(VssdId(1)).harvested_channels, 0);
    // Supply is gone too (blocks returned to the home vSSD, not the pool).
    assert_eq!(e.snapshot(VssdId(0)).harvestable_channels, 0);
}

#[test]
fn shrinking_harvestable_target_reclaims_available_gsbs() {
    let mut e = two_tenant_engine();
    e.set_harvestable_target(VssdId(0), 2);
    assert_eq!(e.snapshot(VssdId(0)).harvestable_channels, 2);
    e.set_harvestable_target(VssdId(0), 0);
    assert_eq!(e.snapshot(VssdId(0)).harvestable_channels, 0);
}

#[test]
fn admission_actions_execute_on_batch_tick() {
    let mut e = two_tenant_engine();
    let ch_bw = e.channel_peak_bytes_per_sec();
    assert!(e.submit_action(HarvestAction::MakeHarvestable {
        vssd: VssdId(0),
        bytes_per_sec: 2.0 * ch_bw,
    }));
    assert!(e.submit_action(HarvestAction::Harvest {
        vssd: VssdId(1),
        bytes_per_sec: 2.0 * ch_bw,
    }));
    // Before the 50 ms tick nothing happened.
    assert_eq!(e.snapshot(VssdId(1)).harvested_channels, 0);
    e.run_until(SimTime::from_millis(60));
    // Batch ran: make-harvestable first, then harvest succeeded.
    assert_eq!(e.snapshot(VssdId(1)).harvested_channels, 2);
}

#[test]
fn gc_reclaims_harvested_gsb_blocks() {
    // Harvester fills a gSB, then the home shrinks its offer; GC must
    // migrate the data to the harvester's own channels and destroy the gSB.
    let mut e = small_engine(vec![
        VssdConfig::hardware(VssdId(0), vec![ChannelId(0), ChannelId(1)]),
        VssdConfig::hardware(VssdId(1), vec![ChannelId(2), ChannelId(3)]),
    ]);
    e.set_harvestable_target(VssdId(0), 2);
    e.set_harvest_target(VssdId(1), 2);
    // Fill the harvester's space (gSB blocks absorb half the stripe),
    // scrambling the order so blocks keep live pages.
    let mut t = 0u64;
    let mut x: u64 = 99;
    for i in 0..400u64 {
        e.submit(req(1, IoOp::Write, i * PAGE, PAGE, t));
        t += 250;
    }
    for _ in 0..800u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let lpa = (x >> 33) % 400;
        e.submit(req(1, IoOp::Write, lpa * PAGE, PAGE, t));
        t += 250;
    }
    e.run_until(SimTime::from_micros(t + 5_000_000));
    e.drain_completed();
    // Home vSSD reclaims: in-use gSB goes zombie, GC migrates lazily as
    // pressure builds. Force pressure with more scrambled overwrites.
    e.set_harvestable_target(VssdId(0), 0);
    let base = e.now().as_micros();
    let mut t2 = 0u64;
    for _ in 0..2600u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let lpa = (x >> 33) % 400;
        e.submit(req(1, IoOp::Write, lpa * PAGE, PAGE, base + t2));
        t2 += 250;
    }
    e.run_until(SimTime::from_micros(base + t2 + 10_000_000));
    assert!(
        e.device().stats().gc_migrated_bytes > 0,
        "no GC migration happened"
    );
}

#[test]
fn queued_ops_visibility() {
    let mut e = two_tenant_engine();
    for i in 0..32 {
        e.submit(req(0, IoOp::Write, i * PAGE, PAGE, 0));
    }
    // Arrivals have not fired yet.
    assert_eq!(e.queued_ops(VssdId(0)), 0);
    e.run_until(SimTime::from_nanos(1));
    assert!(e.queued_ops(VssdId(0)) > 0);
    e.run_until(SimTime::from_secs(1));
    assert_eq!(e.queued_ops(VssdId(0)), 0);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut e = two_tenant_engine();
        for i in 0..64u64 {
            e.submit(req(
                (i % 2) as u32,
                IoOp::Write,
                (i / 2) * PAGE,
                PAGE,
                i * 37,
            ));
        }
        e.run_until(SimTime::from_secs(1));
        e.drain_completed()
            .iter()
            .map(|c| (c.id.0, c.completion.as_nanos()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}
