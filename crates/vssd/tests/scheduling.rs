//! Scheduler-level behaviour: time-sliced bus grants for low-priority
//! bulk, program/erase suspend for high-priority reads, and the in-flight
//! reservation — the mechanisms that let FleetIO keep tail latency near
//! hardware isolation while harvesting (Figure 12).

use fleetio_des::{SimDuration, SimTime};
use fleetio_flash::addr::ChannelId;
use fleetio_flash::config::FlashConfig;
use fleetio_vssd::engine::{Engine, EngineConfig};
use fleetio_vssd::request::{IoOp, IoRequest, Priority};
use fleetio_vssd::vssd::{VssdConfig, VssdId};

const PAGE: u64 = 16 * 1024;

/// Two tenants sharing one channel; tenant 1 is latency-critical.
fn shared_engine() -> Engine {
    let cfg = EngineConfig {
        flash: FlashConfig::training_test(),
        ..Default::default()
    };
    Engine::new(
        cfg,
        vec![
            VssdConfig::software(VssdId(0), vec![ChannelId(0)]).with_capacity_share(0.5),
            VssdConfig::software(VssdId(1), vec![ChannelId(0)]).with_capacity_share(0.5),
        ],
    )
}

fn write(vssd: u32, offset_pages: u64, pages: u64, at_us: u64) -> IoRequest {
    IoRequest {
        vssd: VssdId(vssd),
        op: IoOp::Write,
        offset: offset_pages * PAGE,
        len: pages * PAGE,
        arrival: SimTime::from_micros(at_us),
    }
}

fn read(vssd: u32, offset_pages: u64, bytes: u64, at_us: u64) -> IoRequest {
    IoRequest {
        vssd: VssdId(vssd),
        op: IoOp::Read,
        offset: offset_pages * PAGE,
        len: bytes,
        arrival: SimTime::from_micros(at_us),
    }
}

/// A high-priority read arriving mid-bulk waits at most a bus grant
/// (~61 µs) plus its own service, not a whole page transfer per committed
/// low-priority op.
#[test]
fn high_priority_read_cuts_through_low_priority_bulk() {
    let mut e = shared_engine();
    e.set_priority(VssdId(0), Priority::Low);
    e.set_priority(VssdId(1), Priority::High);
    // Seed data for the read on the same channel.
    e.submit(write(1, 0, 1, 0));
    e.run_until(SimTime::from_millis(5));
    e.drain_completed();
    // 64 pages of low-priority bulk, then a high-priority 4 KiB read
    // arriving while the bulk is mid-flight.
    let base = e.now().as_micros();
    for i in 0..4 {
        e.submit(write(0, 100 + i * 16, 16, base + 1));
    }
    e.submit(read(1, 0, 4096, base + 2_000));
    e.run_until(SimTime::from_secs(2));
    let done = e.drain_completed();
    let r = done
        .iter()
        .find(|c| c.vssd == VssdId(1) && c.op == IoOp::Read)
        .expect("read completed");
    // Base service ≈ 111 µs; with grants + suspend the wait stays well
    // under one page transfer + program (~650 µs).
    assert!(
        r.latency() < SimDuration::from_micros(500),
        "high-priority read waited {}",
        r.latency()
    );
}

/// Without priority separation the same read waits longer than with it —
/// the gap that compounds into the software-isolation tail of Figure 3b.
/// (Stride credit still protects a sparse tenant somewhat, so the
/// difference at a single-request scale is bounded but must exist.)
#[test]
fn equal_priority_read_waits_longer_than_prioritized() {
    let run = |prioritized: bool| {
        let mut e = shared_engine();
        if prioritized {
            e.set_priority(VssdId(0), Priority::Low);
            e.set_priority(VssdId(1), Priority::High);
        }
        e.submit(write(1, 0, 1, 0));
        e.run_until(SimTime::from_millis(5));
        e.drain_completed();
        let base = e.now().as_micros();
        for i in 0..4 {
            e.submit(write(0, 100 + i * 16, 16, base + 1));
        }
        e.submit(read(1, 0, 4096, base + 2_000));
        e.run_until(SimTime::from_secs(2));
        let done = e.drain_completed();
        done.iter()
            .find(|c| c.vssd == VssdId(1) && c.op == IoOp::Read)
            .expect("read completed")
            .latency()
    };
    let prioritized = run(true);
    let flat = run(false);
    assert!(
        flat > prioritized,
        "priorities made no difference: flat {flat} vs prioritized {prioritized}"
    );
}

/// Low-priority time-slicing must not cost the bulk tenant meaningful
/// bandwidth when it runs alone.
#[test]
fn time_slicing_preserves_solo_throughput() {
    let run = |prio: Priority| {
        let cfg = EngineConfig {
            flash: FlashConfig::training_test(),
            ..Default::default()
        };
        let mut e = Engine::new(
            cfg,
            vec![VssdConfig::hardware(
                VssdId(0),
                vec![ChannelId(0), ChannelId(1)],
            )],
        );
        e.set_priority(VssdId(0), prio);
        for i in 0..32 {
            e.submit(write(0, i * 16, 16, 0));
        }
        e.run_until(SimTime::from_secs(5));
        let done = e.drain_completed();
        assert_eq!(done.len(), 32);
        done.iter().map(|c| c.completion).max().expect("non-empty")
    };
    let medium = run(Priority::Medium).as_micros() as f64;
    let low = run(Priority::Low).as_micros() as f64;
    assert!(
        low < medium * 1.15,
        "time-slicing cost too much: low {low}us vs medium {medium}us"
    );
}

/// The dispatcher never loses ops when priorities flip mid-stream.
#[test]
fn priority_flapping_is_safe() {
    let mut e = shared_engine();
    let mut t = 0u64;
    for i in 0..120u64 {
        let p = match i % 3 {
            0 => Priority::Low,
            1 => Priority::Medium,
            _ => Priority::High,
        };
        e.set_priority(VssdId((i % 2) as u32), p);
        e.submit(write((i % 2) as u32, i % 64, 2, t));
        t += 500;
    }
    e.run_until(SimTime::from_micros(t) + SimDuration::from_secs(3));
    assert_eq!(e.drain_completed().len(), 120);
    assert_eq!(e.queued_ops(VssdId(0)), 0);
    assert_eq!(e.queued_ops(VssdId(1)), 0);
}
