//! Reinforcement-learning substrate: PPO and multi-agent utilities.
//!
//! FleetIO trains one Proximal Policy Optimization (PPO) agent per vSSD
//! (§3.8: RLlib + PyTorch, hidden layers [50, 50], learning rate 1e-4,
//! discount 0.9, batch size 32). This crate implements the pieces from
//! scratch on top of [`fleetio_ml`]:
//!
//! * `env` — the multi-agent environment trait with multi-discrete
//!   action spaces,
//! * [`policy`] — a categorical multi-head PPO policy with a separate
//!   value network,
//! * [`buffer`] — rollout storage with Generalized Advantage Estimation,
//! * [`ppo`] — the clipped-surrogate PPO trainer,
//! * [`reward`] — the paper's multi-agent reward mixing (Equation 2),
//! * [`normalize`] — running observation normalization,
//! * [`parallel`] — crossbeam-based parallel rollout collection (the
//!   stand-in for the paper's Ray pre-training cluster).

pub mod buffer;
pub mod env;
pub mod normalize;
pub mod parallel;
pub mod policy;
pub mod ppo;
pub mod reward;

pub use buffer::{RolloutBuffer, Transition};
pub use env::{MultiAgentEnv, StepResult};
pub use normalize::{NormalizerState, ObsNormalizer};
pub use policy::{PolicyState, PpoPolicy};
pub use ppo::{PpoConfig, PpoTrainer, TrainerState};
