//! Rollout storage and Generalized Advantage Estimation.

/// One agent-step of experience.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Observation at decision time.
    pub obs: Vec<f32>,
    /// Multi-discrete action taken.
    pub action: Vec<usize>,
    /// Log-probability of the action under the behaviour policy.
    pub logp: f64,
    /// Reward received.
    pub reward: f64,
    /// Critic value estimate at decision time.
    pub value: f64,
    /// Whether the episode terminated after this step.
    pub done: bool,
    /// Filled by [`RolloutBuffer::compute_gae`]: advantage estimate.
    pub advantage: f64,
    /// Filled by [`RolloutBuffer::compute_gae`]: discounted return target.
    pub ret: f64,
}

/// A flat buffer of transitions; episodes are delimited by `done`.
#[derive(Debug, Clone, Default)]
pub struct RolloutBuffer {
    transitions: Vec<Transition>,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one transition.
    pub fn push(&mut self, t: Transition) {
        self.transitions.push(t);
    }

    /// Appends every transition from another buffer.
    pub fn extend(&mut self, other: RolloutBuffer) {
        self.transitions.extend(other.transitions);
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Read access to the transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.transitions.clear();
    }

    /// Computes GAE(γ, λ) advantages and return targets in place.
    ///
    /// Episodes must be stored contiguously; a `done` flag (or the buffer
    /// end) truncates bootstrapping. After this call every transition's
    /// `advantage` and `ret` are filled, and advantages are normalized to
    /// zero mean / unit variance across the buffer (standard PPO practice).
    ///
    /// # Panics
    ///
    /// Panics unless `gamma` and `lambda` are in `[0, 1]`.
    pub fn compute_gae(&mut self, gamma: f64, lambda: f64) {
        assert!((0.0..=1.0).contains(&gamma), "gamma out of range");
        assert!((0.0..=1.0).contains(&lambda), "lambda out of range");
        let n = self.transitions.len();
        let mut gae = 0.0f64;
        for i in (0..n).rev() {
            let (next_value, next_nonterminal) = if self.transitions[i].done || i + 1 == n {
                (0.0, 0.0)
            } else {
                (self.transitions[i + 1].value, 1.0)
            };
            let (reward, value) = (self.transitions[i].reward, self.transitions[i].value);
            let delta = reward + gamma * next_value * next_nonterminal - value;
            gae = delta + gamma * lambda * next_nonterminal * gae;
            self.transitions[i].advantage = gae;
            self.transitions[i].ret = gae + value;
        }
        // Normalize advantages.
        if n > 1 {
            let mean: f64 = self.transitions.iter().map(|t| t.advantage).sum::<f64>() / n as f64;
            let var: f64 = self
                .transitions
                .iter()
                .map(|t| (t.advantage - mean).powi(2))
                .sum::<f64>()
                / n as f64;
            let std = var.sqrt().max(1e-8);
            for t in &mut self.transitions {
                t.advantage = (t.advantage - mean) / std;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(reward: f64, value: f64, done: bool) -> Transition {
        Transition {
            obs: vec![0.0],
            action: vec![0],
            logp: 0.0,
            reward,
            value,
            done,
            advantage: 0.0,
            ret: 0.0,
        }
    }

    #[test]
    fn single_step_episode_advantage_is_td_error() {
        let mut b = RolloutBuffer::new();
        b.push(t(1.0, 0.4, true));
        b.compute_gae(0.9, 0.95);
        // Only one sample → normalization skipped; adv = r − V = 0.6.
        assert!((b.transitions()[0].advantage - 0.6).abs() < 1e-12);
        assert!((b.transitions()[0].ret - 1.0).abs() < 1e-12);
    }

    #[test]
    fn returns_discount_correctly_with_lambda_one() {
        let mut b = RolloutBuffer::new();
        // Two-step episode, V = 0 everywhere, λ=1: ret[0] = r0 + γ r1.
        b.push(t(1.0, 0.0, false));
        b.push(t(1.0, 0.0, true));
        b.compute_gae(0.5, 1.0);
        assert!((b.transitions()[0].ret - 1.5).abs() < 1e-12);
        assert!((b.transitions()[1].ret - 1.0).abs() < 1e-12);
    }

    #[test]
    fn done_stops_bootstrapping() {
        let mut b = RolloutBuffer::new();
        b.push(t(0.0, 0.0, true));
        b.push(t(100.0, 0.0, true));
        b.compute_gae(0.99, 0.95);
        // First episode must not see the second's reward: its raw return
        // is 0 (check via ret, which is unnormalized).
        assert!((b.transitions()[0].ret - 0.0).abs() < 1e-12);
        assert!((b.transitions()[1].ret - 100.0).abs() < 1e-12);
    }

    #[test]
    fn advantages_are_normalized() {
        let mut b = RolloutBuffer::new();
        for i in 0..10 {
            b.push(t(i as f64, 0.0, i == 9));
        }
        b.compute_gae(0.9, 0.95);
        let mean: f64 = b.transitions().iter().map(|t| t.advantage).sum::<f64>() / b.len() as f64;
        let var: f64 = b
            .transitions()
            .iter()
            .map(|t| (t.advantage - mean).powi(2))
            .sum::<f64>()
            / b.len() as f64;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-6);
    }

    #[test]
    fn extend_and_clear() {
        let mut a = RolloutBuffer::new();
        let mut b = RolloutBuffer::new();
        a.push(t(1.0, 0.0, true));
        b.push(t(2.0, 0.0, true));
        a.extend(b);
        assert_eq!(a.len(), 2);
        a.clear();
        assert!(a.is_empty());
    }
}
