//! Categorical multi-head PPO policy with a separate value network.

use fleetio_des::rng::Rng;
use fleetio_ml::mlp::{log_softmax, softmax};
use fleetio_ml::{Activation, Mlp, MlpState};

/// A PPO actor-critic: one MLP produces the concatenated logits of every
/// discrete action head, a second MLP estimates the state value.
///
/// # Example
///
/// ```
/// use fleetio_rl::PpoPolicy;
///
/// let mut rng = fleetio_des::rng::SmallRng::seed_from_u64(0);
/// let policy = PpoPolicy::new(4, &[5, 3], &[50, 50], &mut rng);
/// let obs = [0.1, 0.2, -0.1, 0.0];
/// let (action, logp) = policy.sample(&obs, &mut rng);
/// assert_eq!(action.len(), 2);
/// assert!(logp < 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PpoPolicy {
    pub(crate) actor: Mlp,
    pub(crate) critic: Mlp,
    action_dims: Vec<usize>,
}

/// The full serializable state of a [`PpoPolicy`]: both networks plus the
/// discrete head layout. Produced by [`PpoPolicy::export_state`], consumed
/// by [`PpoPolicy::from_state`]; the round trip is bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyState {
    /// Actor network (concatenated head logits).
    pub actor: MlpState,
    /// Critic network (scalar value).
    pub critic: MlpState,
    /// Sizes of the discrete action heads.
    pub action_dims: Vec<usize>,
}

impl PpoPolicy {
    /// Builds a policy for `obs_dim` observations, `action_dims` discrete
    /// heads and the given hidden layer sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `action_dims` is empty.
    pub fn new<R: Rng>(
        obs_dim: usize,
        action_dims: &[usize],
        hidden: &[usize],
        rng: &mut R,
    ) -> Self {
        assert!(!action_dims.is_empty(), "need at least one action head");
        let logits: usize = action_dims.iter().sum();
        let mut actor_dims = vec![obs_dim];
        actor_dims.extend_from_slice(hidden);
        actor_dims.push(logits);
        let mut critic_dims = vec![obs_dim];
        critic_dims.extend_from_slice(hidden);
        critic_dims.push(1);
        PpoPolicy {
            actor: Mlp::new(&actor_dims, Activation::Tanh, Activation::Linear, rng),
            critic: Mlp::new(&critic_dims, Activation::Tanh, Activation::Linear, rng),
            action_dims: action_dims.to_vec(),
        }
    }

    /// Sizes of the discrete action heads.
    pub fn action_dims(&self) -> &[usize] {
        &self.action_dims
    }

    /// Snapshots actor, critic and head layout for checkpointing.
    pub fn export_state(&self) -> PolicyState {
        PolicyState {
            actor: self.actor.export_state(),
            critic: self.critic.export_state(),
            action_dims: self.action_dims.clone(),
        }
    }

    /// Rebuilds a policy from an exported state.
    ///
    /// # Errors
    ///
    /// Returns a message when networks or head layout are inconsistent
    /// (logit width ≠ sum of head sizes, critic not scalar, observation
    /// dimensions differing between actor and critic).
    pub fn from_state(state: PolicyState) -> Result<PpoPolicy, String> {
        if state.action_dims.is_empty() || state.action_dims.contains(&0) {
            return Err("action heads must be non-empty with positive sizes".to_string());
        }
        let actor = Mlp::from_state(state.actor).map_err(|e| format!("actor: {e}"))?;
        let critic = Mlp::from_state(state.critic).map_err(|e| format!("critic: {e}"))?;
        let logits: usize = state.action_dims.iter().sum();
        if actor.out_dim() != logits {
            return Err(format!(
                "actor emits {} logits but heads sum to {logits}",
                actor.out_dim()
            ));
        }
        if critic.out_dim() != 1 {
            return Err(format!("critic emits {} outputs, not 1", critic.out_dim()));
        }
        if actor.in_dim() != critic.in_dim() {
            return Err(format!(
                "actor obs dim {} != critic obs dim {}",
                actor.in_dim(),
                critic.in_dim()
            ));
        }
        Ok(PpoPolicy {
            actor,
            critic,
            action_dims: state.action_dims,
        })
    }

    /// Total trainable parameters (actor + critic).
    pub fn n_params(&self) -> usize {
        self.actor.n_params() + self.critic.n_params()
    }

    /// Splits concatenated logits into per-head slices.
    pub(crate) fn split_heads<'a>(&self, logits: &'a [f32]) -> Vec<&'a [f32]> {
        let mut out = Vec::with_capacity(self.action_dims.len());
        let mut off = 0;
        for d in &self.action_dims {
            out.push(&logits[off..off + d]);
            off += d;
        }
        out
    }

    /// Samples an action per head; returns `(action, log_prob)`.
    pub fn sample<R: Rng>(&self, obs: &[f32], rng: &mut R) -> (Vec<usize>, f64) {
        let logits = self.actor.forward(obs);
        let mut action = Vec::with_capacity(self.action_dims.len());
        let mut logp = 0.0f64;
        for head in self.split_heads(&logits) {
            let probs = softmax(head);
            let mut u: f32 = rng.gen_range(0.0f32..1.0);
            let mut chosen = probs.len() - 1;
            for (i, p) in probs.iter().enumerate() {
                if u < *p {
                    chosen = i;
                    break;
                }
                u -= p;
            }
            let lp = log_softmax(head);
            logp += f64::from(lp[chosen]);
            action.push(chosen);
        }
        (action, logp)
    }

    /// Samples actions for a whole row-major batch of observations with
    /// one actor pass. RNG draws happen row by row, head by head — the
    /// exact consumption order of calling [`PpoPolicy::sample`] on each
    /// row in turn — and `Mlp::forward_batch` is bit-identical per row,
    /// so batched collection reproduces serial collection byte for byte.
    pub fn sample_batch<R: Rng>(
        &self,
        obs: &[f32],
        rows: usize,
        rng: &mut R,
    ) -> Vec<(Vec<usize>, f64)> {
        let logits = self.actor.forward_batch(obs, rows);
        let width = self.actor.out_dim();
        logits
            .chunks_exact(width.max(1))
            .map(|row_logits| {
                let mut action = Vec::with_capacity(self.action_dims.len());
                let mut logp = 0.0f64;
                for head in self.split_heads(row_logits) {
                    let probs = softmax(head);
                    let mut u: f32 = rng.gen_range(0.0f32..1.0);
                    let mut chosen = probs.len() - 1;
                    for (i, p) in probs.iter().enumerate() {
                        if u < *p {
                            chosen = i;
                            break;
                        }
                        u -= p;
                    }
                    let lp = log_softmax(head);
                    logp += f64::from(lp[chosen]);
                    action.push(chosen);
                }
                (action, logp)
            })
            .collect()
    }

    /// Greedy (argmax) action, used at deployment time.
    pub fn act_greedy(&self, obs: &[f32]) -> Vec<usize> {
        let logits = self.actor.forward(obs);
        self.split_heads(&logits)
            .into_iter()
            .map(|head| {
                head.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty head")
            })
            .collect()
    }

    /// Greedy actions for a row-major batch with one actor pass;
    /// per-row results match [`PpoPolicy::act_greedy`] exactly.
    pub fn act_greedy_batch(&self, obs: &[f32], rows: usize) -> Vec<Vec<usize>> {
        let logits = self.actor.forward_batch(obs, rows);
        let width = self.actor.out_dim();
        logits
            .chunks_exact(width.max(1))
            .map(|row_logits| {
                self.split_heads(row_logits)
                    .into_iter()
                    .map(|head| {
                        head.iter()
                            .enumerate()
                            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                            .map(|(i, _)| i)
                            .expect("non-empty head")
                    })
                    .collect()
            })
            .collect()
    }

    /// Log-probability of `action` under the current policy.
    ///
    /// # Panics
    ///
    /// Panics if the action shape or indices are invalid.
    pub fn log_prob(&self, obs: &[f32], action: &[usize]) -> f64 {
        assert_eq!(action.len(), self.action_dims.len(), "action head mismatch");
        let logits = self.actor.forward(obs);
        self.split_heads(&logits)
            .iter()
            .zip(action)
            .map(|(head, &a)| f64::from(log_softmax(head)[a]))
            .sum()
    }

    /// Mean entropy across heads for `obs`.
    pub fn entropy(&self, obs: &[f32]) -> f64 {
        let logits = self.actor.forward(obs);
        let heads = self.split_heads(&logits);
        let n = heads.len() as f64;
        heads
            .into_iter()
            .map(|head| {
                let p = softmax(head);
                -p.iter()
                    .filter(|x| **x > 0.0)
                    .map(|x| f64::from(*x * x.ln()))
                    .sum::<f64>()
            })
            .sum::<f64>()
            / n
    }

    /// Critic value estimate for `obs`.
    pub fn value(&self, obs: &[f32]) -> f64 {
        f64::from(self.critic.forward(obs)[0])
    }

    /// Critic values for a row-major batch with one critic pass;
    /// per-row results match [`PpoPolicy::value`] exactly.
    pub fn value_batch(&self, obs: &[f32], rows: usize) -> Vec<f64> {
        self.critic
            .forward_batch(obs, rows)
            .into_iter()
            .map(f64::from)
            .collect()
    }
}

impl PpoPolicy {
    /// Behaviour cloning: fits the actor to `(observation, action)` pairs
    /// by cross-entropy over every head. Observations must already be
    /// normalized the same way later inference will normalize them.
    /// Returns the mean cross-entropy of the final epoch.
    ///
    /// Used to warm-start PPO from a scripted reference policy when the
    /// training budget is too small to discover long-horizon behaviours
    /// from scratch.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or shapes mismatch the policy.
    pub fn imitate(
        &mut self,
        samples: &[(Vec<f32>, Vec<usize>)],
        epochs: usize,
        minibatch: usize,
        lr: f32,
        seed: u64,
    ) -> f64 {
        use fleetio_ml::mlp::{log_softmax, softmax};

        assert!(!samples.is_empty(), "behaviour cloning needs samples");
        assert!(
            epochs > 0 && minibatch > 0,
            "epochs/minibatch must be positive"
        );
        let mut opt = fleetio_ml::Adam::new(self.actor.n_params(), lr);
        let mut rng = fleetio_des::rng::SmallRng::seed_from_u64(seed);
        let dims = self.action_dims.clone();
        let mut indices: Vec<usize> = (0..samples.len()).collect();
        let mut last_ce = 0.0;
        for _ in 0..epochs {
            rng.shuffle(&mut indices);
            let mut epoch_ce = 0.0;
            for chunk in indices.chunks(minibatch) {
                let mut grads = self.actor.zero_grads();
                for &i in chunk {
                    let (obs, action) = &samples[i];
                    let cache = self.actor.forward_cached(obs);
                    let logits = cache.output().to_vec();
                    let mut dlogits = vec![0.0f32; logits.len()];
                    let mut off = 0;
                    for (h, d) in dims.iter().enumerate() {
                        let head = &logits[off..off + d];
                        let p = softmax(head);
                        let lp = log_softmax(head);
                        let a = action[h];
                        epoch_ce -= f64::from(lp[a]);
                        for (j, pj) in p.iter().enumerate() {
                            let onehot = if j == a { 1.0 } else { 0.0 };
                            dlogits[off + j] = pj - onehot;
                        }
                        off += d;
                    }
                    self.actor.backward(&cache, &dlogits, &mut grads);
                }
                grads.scale(1.0 / chunk.len() as f32);
                grads.clip_norm(1.0);
                opt.step(&mut self.actor, &grads);
            }
            last_ce = epoch_ce / samples.len() as f64;
        }
        last_ce
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::rng::SmallRng;

    fn policy() -> (PpoPolicy, SmallRng) {
        let mut rng = SmallRng::seed_from_u64(11);
        let p = PpoPolicy::new(3, &[4, 2], &[8], &mut rng);
        (p, rng)
    }

    #[test]
    fn sample_respects_head_sizes() {
        let (p, mut rng) = policy();
        for _ in 0..50 {
            let (a, logp) = p.sample(&[0.1, 0.2, 0.3], &mut rng);
            assert!(a[0] < 4 && a[1] < 2);
            assert!(logp <= 0.0);
        }
    }

    #[test]
    fn log_prob_matches_sampling_distribution() {
        let (p, mut rng) = policy();
        let obs = [0.5, -0.5, 0.0];
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            let (a, _) = p.sample(&obs, &mut rng);
            counts[a[0]] += 1;
        }
        for (a0, &count) in counts.iter().enumerate() {
            // Marginal of head 0: sum over head 1.
            let lp0 = p.log_prob(&obs, &[a0, 0]);
            let lp1 = p.log_prob(&obs, &[a0, 1]);
            // p(head0 = a0) = exp(lp(a0,0)) / p(head1=0|...) — heads are
            // independent, so marginal is exp(lp0) + exp(lp1) over head 1.
            let marginal = lp0.exp() + lp1.exp();
            let freq = count as f64 / n as f64;
            assert!(
                (marginal - freq).abs() < 0.02,
                "head0={a0}: analytic {marginal:.3} vs empirical {freq:.3}"
            );
        }
    }

    #[test]
    fn greedy_picks_max_probability_action() {
        let (p, mut rng) = policy();
        let obs = [0.2, 0.8, -0.3];
        let greedy = p.act_greedy(&obs);
        // The greedy action must have the highest log-prob among all.
        let mut best = f64::NEG_INFINITY;
        let mut best_a = vec![0, 0];
        for a0 in 0..4 {
            for a1 in 0..2 {
                let lp = p.log_prob(&obs, &[a0, a1]);
                if lp > best {
                    best = lp;
                    best_a = vec![a0, a1];
                }
            }
        }
        assert_eq!(greedy, best_a);
        let _ = &mut rng;
    }

    #[test]
    fn entropy_is_positive_and_bounded() {
        let (p, _) = policy();
        let h = p.entropy(&[0.0, 0.0, 0.0]);
        // Max mean entropy = (ln 4 + ln 2) / 2 ≈ 1.04.
        assert!(h > 0.0 && h <= 1.05, "entropy {h}");
    }

    #[test]
    fn value_is_finite() {
        let (p, _) = policy();
        assert!(p.value(&[1.0, -1.0, 0.5]).is_finite());
    }

    #[test]
    fn imitate_learns_state_conditional_mapping() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut p = PpoPolicy::new(2, &[3, 2], &[16], &mut rng);
        // Teach: obs [1,0] → (2, 0); obs [0,1] → (0, 1).
        let samples = vec![
            (vec![1.0, 0.0], vec![2usize, 0]),
            (vec![0.0, 1.0], vec![0usize, 1]),
        ];
        let ce = p.imitate(&samples, 300, 2, 1e-2, 5);
        assert!(ce < 0.1, "final cross-entropy {ce}");
        assert_eq!(p.act_greedy(&[1.0, 0.0]), vec![2, 0]);
        assert_eq!(p.act_greedy(&[0.0, 1.0]), vec![0, 1]);
    }

    #[test]
    fn state_roundtrip_preserves_behaviour() {
        let (p, _) = policy();
        let back = PpoPolicy::from_state(p.export_state()).expect("valid state");
        let obs = [0.4, -0.1, 0.9];
        assert_eq!(p.act_greedy(&obs), back.act_greedy(&obs));
        assert_eq!(p.value(&obs), back.value(&obs));
        assert_eq!(p.log_prob(&obs, &[1, 0]), back.log_prob(&obs, &[1, 0]));
        assert_eq!(back.export_state(), p.export_state());
    }

    #[test]
    fn from_state_rejects_inconsistent_heads() {
        let (p, _) = policy();
        let mut bad = p.export_state();
        bad.action_dims = vec![4, 3]; // sums to 7, actor emits 6 logits
        assert!(PpoPolicy::from_state(bad).is_err());
        let mut bad = p.export_state();
        bad.action_dims.clear();
        assert!(PpoPolicy::from_state(bad).is_err());
        let mut bad = p.export_state();
        bad.critic.layers.last_mut().expect("has layers").out_dim = 2;
        assert!(PpoPolicy::from_state(bad).is_err());
    }

    /// Batched sample/value/greedy must reproduce the serial calls
    /// exactly: same actions from the same RNG stream, bit-equal logps
    /// and values.
    #[test]
    fn batch_inference_matches_serial_calls() {
        let (p, _) = policy();
        let rows: Vec<Vec<f32>> = (0..7)
            .map(|i| vec![0.3 * i as f32 - 1.0, 0.1 * i as f32, -0.5 + 0.2 * i as f32])
            .collect();
        let flat: Vec<f32> = rows.concat();

        let mut rng_a = SmallRng::seed_from_u64(99);
        let mut rng_b = SmallRng::seed_from_u64(99);
        let batched = p.sample_batch(&flat, rows.len(), &mut rng_a);
        for (row, (ba, blp)) in rows.iter().zip(&batched) {
            let (sa, slp) = p.sample(row, &mut rng_b);
            assert_eq!(*ba, sa);
            assert_eq!(blp.to_bits(), slp.to_bits());
        }
        // Both paths drained the same number of rng draws.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());

        let values = p.value_batch(&flat, rows.len());
        let greedy = p.act_greedy_batch(&flat, rows.len());
        for ((row, v), g) in rows.iter().zip(&values).zip(&greedy) {
            assert_eq!(v.to_bits(), p.value(row).to_bits());
            assert_eq!(*g, p.act_greedy(row));
        }
    }

    #[test]
    fn param_count_matches_paper_scale() {
        let mut rng = SmallRng::seed_from_u64(0);
        // FleetIO: 33 obs (11 states × 3 windows), [50, 50] hidden,
        // heads [5, 5, 3] → ~9 K parameters.
        let p = PpoPolicy::new(33, &[5, 5, 3], &[50, 50], &mut rng);
        assert!((7_000..12_000).contains(&p.n_params()), "{}", p.n_params());
    }
}
