//! Proximal Policy Optimization with a clipped surrogate objective.
//!
//! Hyper-parameter defaults follow Table 3 of the paper: learning rate
//! 1e-4, discount γ = 0.9, minibatch size 32, hidden layers [50, 50]
//! (the layers are fixed by the [`crate::PpoPolicy`] passed in).

use fleetio_des::rng::{Rng, SmallRng};
use fleetio_ml::mlp::{log_softmax, softmax};
use fleetio_ml::Adam;

use crate::buffer::{RolloutBuffer, Transition};
use crate::env::MultiAgentEnv;
use crate::normalize::{NormalizerState, ObsNormalizer};
use crate::policy::{PolicyState, PpoPolicy};

/// PPO hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PpoConfig {
    /// Actor learning rate (paper: 1e-4).
    pub lr: f32,
    /// Critic learning rate.
    pub critic_lr: f32,
    /// Discount factor γ (paper: 0.9).
    pub gamma: f64,
    /// GAE λ.
    pub lambda: f64,
    /// Clipping radius ε.
    pub clip: f64,
    /// Optimization epochs per update.
    pub epochs: usize,
    /// Minibatch size (paper: 32).
    pub minibatch: usize,
    /// Entropy bonus coefficient.
    pub entropy_coef: f64,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            lr: 1e-4,
            critic_lr: 1e-3,
            gamma: 0.9,
            lambda: 0.95,
            clip: 0.2,
            epochs: 4,
            minibatch: 32,
            entropy_coef: 0.01,
            max_grad_norm: 0.5,
        }
    }
}

impl PpoConfig {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.lr <= 0.0
            || self.critic_lr <= 0.0
            || !self.lr.is_finite()
            || !self.critic_lr.is_finite()
        {
            return Err("learning rates must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.gamma) || !(0.0..=1.0).contains(&self.lambda) {
            return Err("gamma/lambda must be in [0, 1]".into());
        }
        if self.clip <= 0.0 {
            return Err("clip must be positive".into());
        }
        if self.epochs == 0 || self.minibatch == 0 {
            return Err("epochs/minibatch must be positive".into());
        }
        Ok(())
    }
}

/// Diagnostics from one PPO update.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PpoStats {
    /// Mean clipped-surrogate policy loss.
    pub policy_loss: f64,
    /// Mean squared value error.
    pub value_loss: f64,
    /// Mean policy entropy.
    pub entropy: f64,
    /// Approximate KL divergence old‖new (mean of `logp_old − logp_new`
    /// over the update's samples, measured against the moving policy).
    pub kl: f64,
    /// Fraction of samples where the ratio was clipped.
    pub clip_fraction: f64,
    /// Mean reward of the transitions consumed by this update (raw
    /// per-step rewards, before GAE).
    pub mean_reward: f64,
    /// Transitions consumed.
    pub samples: usize,
}

/// The full serializable state of a [`PpoTrainer`]: policy, both Adam
/// optimizers, hyper-parameters, shuffle/sampling RNG, update counter and
/// observation-normalizer statistics. Produced by
/// [`PpoTrainer::export_state`], consumed by [`PpoTrainer::from_state`];
/// resuming from the round trip continues training **bit-identically**
/// (telemetry recording is the one thing not carried across — re-enable it
/// after restoring if needed; it never affects training).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerState {
    /// Actor/critic networks and head layout.
    pub policy: PolicyState,
    /// Actor optimizer moments.
    pub actor_opt: fleetio_ml::AdamState,
    /// Critic optimizer moments.
    pub critic_opt: fleetio_ml::AdamState,
    /// Hyper-parameters.
    pub cfg: PpoConfig,
    /// Raw xoshiro256++ state of the trainer's RNG.
    pub rng: [u64; 4],
    /// Lifetime count of updates that consumed data.
    pub updates: u64,
    /// Observation-normalizer running statistics.
    pub normalizer: NormalizerState,
}

/// The PPO trainer: policy + optimizers + observation normalizer.
#[derive(Debug, Clone)]
pub struct PpoTrainer {
    /// The trained policy (shared across agents during pre-training).
    pub policy: PpoPolicy,
    /// The running observation normalizer.
    pub normalizer: ObsNormalizer,
    actor_opt: Adam,
    critic_opt: Adam,
    cfg: PpoConfig,
    rng: SmallRng,
    /// Lifetime count of [`PpoTrainer::update`] calls that consumed data.
    updates: u64,
    /// Per-update telemetry series, populated when enabled.
    telemetry: Option<fleetio_obs::TrainingSeries>,
}

impl PpoTrainer {
    /// Builds a trainer around `policy`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(policy: PpoPolicy, obs_dim: usize, cfg: PpoConfig, seed: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid PPO config: {e}");
        }
        let actor_opt = Adam::new(policy.actor.n_params(), cfg.lr);
        let critic_opt = Adam::new(policy.critic.n_params(), cfg.critic_lr);
        PpoTrainer {
            policy,
            normalizer: ObsNormalizer::new(obs_dim, 10.0),
            actor_opt,
            critic_opt,
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            updates: 0,
            telemetry: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.cfg
    }

    /// Lifetime count of updates that consumed data.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Snapshots everything training depends on, for checkpointing.
    pub fn export_state(&self) -> TrainerState {
        TrainerState {
            policy: self.policy.export_state(),
            actor_opt: self.actor_opt.export_state(),
            critic_opt: self.critic_opt.export_state(),
            cfg: self.cfg.clone(),
            rng: self.rng.state(),
            updates: self.updates,
            normalizer: self.normalizer.export_state(),
        }
    }

    /// Rebuilds a trainer from an exported state. The restored trainer
    /// continues training bit-identically to the snapshotted one.
    ///
    /// # Errors
    ///
    /// Returns a message when any component is internally inconsistent or
    /// the components disagree (optimizer moment counts vs. network sizes,
    /// normalizer width vs. policy observation width, zero RNG state).
    pub fn from_state(state: TrainerState) -> Result<PpoTrainer, String> {
        state.cfg.validate().map_err(|e| format!("config: {e}"))?;
        let policy = PpoPolicy::from_state(state.policy).map_err(|e| format!("policy: {e}"))?;
        let actor_opt =
            fleetio_ml::Adam::from_state(state.actor_opt).map_err(|e| format!("actor opt: {e}"))?;
        let critic_opt = fleetio_ml::Adam::from_state(state.critic_opt)
            .map_err(|e| format!("critic opt: {e}"))?;
        let normalizer =
            ObsNormalizer::from_state(state.normalizer).map_err(|e| format!("normalizer: {e}"))?;
        if actor_opt.n_params() != policy.actor.n_params() {
            return Err("actor optimizer sized for a different network".to_string());
        }
        if critic_opt.n_params() != policy.critic.n_params() {
            return Err("critic optimizer sized for a different network".to_string());
        }
        if normalizer.dim() != policy.actor.in_dim() {
            return Err(format!(
                "normalizer dim {} != policy obs dim {}",
                normalizer.dim(),
                policy.actor.in_dim()
            ));
        }
        if state.rng == [0, 0, 0, 0] {
            return Err("all-zero RNG state".to_string());
        }
        Ok(PpoTrainer {
            policy,
            normalizer,
            actor_opt,
            critic_opt,
            cfg: state.cfg,
            rng: SmallRng::from_state(state.rng),
            updates: state.updates,
            telemetry: None,
        })
    }

    /// Starts recording one [`fleetio_obs::TrainingRecord`] per update.
    /// Telemetry never affects training; it only mirrors the returned
    /// [`PpoStats`].
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(fleetio_obs::TrainingSeries::new());
        }
    }

    /// The recorded telemetry series, when enabled.
    pub fn telemetry(&self) -> Option<&fleetio_obs::TrainingSeries> {
        self.telemetry.as_ref()
    }

    /// Removes and returns the telemetry series, disabling recording.
    pub fn take_telemetry(&mut self) -> Option<fleetio_obs::TrainingSeries> {
        self.telemetry.take()
    }

    /// Collects `steps` environment steps, updating the normalizer as it
    /// goes. Every agent contributes its own transition sequence
    /// (bootstrapped at truncation), so the returned buffer is GAE-ready.
    pub fn collect_rollout<E: MultiAgentEnv>(
        &mut self,
        env: &mut E,
        steps: usize,
    ) -> RolloutBuffer {
        let _prof = fleetio_obs::prof::span("rollout.collect");
        let n = env.n_agents();
        let mut per_agent: Vec<Vec<Transition>> = vec![Vec::new(); n];
        let mut obs: Vec<Vec<f32>> = env
            .reset()
            .iter()
            .map(|o| self.normalizer.observe(o))
            .collect();
        for step in 0..steps {
            let mut actions = Vec::with_capacity(n);
            let mut logps = Vec::with_capacity(n);
            let mut values = Vec::with_capacity(n);
            for o in &obs {
                let (a, lp) = self.policy.sample(o, &mut self.rng);
                values.push(self.policy.value(o));
                actions.push(a);
                logps.push(lp);
            }
            let result = env.step(&actions);
            let next_obs: Vec<Vec<f32>> = result
                .observations
                .iter()
                .map(|o| self.normalizer.observe(o))
                .collect();
            let truncated = step + 1 == steps && !result.done;
            for i in 0..n {
                let mut reward = result.rewards[i];
                if truncated {
                    // Bootstrap the truncated tail with the critic.
                    reward += self.cfg.gamma * self.policy.value(&next_obs[i]);
                }
                per_agent[i].push(Transition {
                    obs: std::mem::take(&mut obs[i]),
                    action: actions[i].clone(),
                    logp: logps[i],
                    reward,
                    value: values[i],
                    done: result.done || truncated,
                    advantage: 0.0,
                    ret: 0.0,
                });
            }
            obs = next_obs;
            if result.done {
                obs = env
                    .reset()
                    .iter()
                    .map(|o| self.normalizer.observe(o))
                    .collect();
            }
        }
        let mut buffer = RolloutBuffer::new();
        for seq in per_agent {
            let mut b = RolloutBuffer::new();
            for t in seq {
                b.push(t);
            }
            buffer.extend(b);
        }
        buffer
    }

    /// Runs one PPO update over `buffer` (GAE is computed here).
    pub fn update(&mut self, mut buffer: RolloutBuffer) -> PpoStats {
        let _prof = fleetio_obs::prof::span("ppo.update");
        {
            let _gae = fleetio_obs::prof::span("ppo.gae");
            buffer.compute_gae(self.cfg.gamma, self.cfg.lambda);
        }
        let n = buffer.len();
        if n == 0 {
            return PpoStats::default();
        }
        // Report the buffer's own mean reward so externally collected
        // buffers (parallel workers) are described correctly.
        let buffer_mean: f64 =
            buffer.transitions().iter().map(|t| t.reward).sum::<f64>() / n as f64;
        let mut stats = PpoStats {
            samples: n,
            mean_reward: buffer_mean,
            ..Default::default()
        };
        let mut stat_count = 0usize;
        let mut indices: Vec<usize> = (0..n).collect();
        for _ in 0..self.cfg.epochs {
            self.rng.shuffle(&mut indices);
            for chunk in indices.chunks(self.cfg.minibatch) {
                let _mb_prof = fleetio_obs::prof::span("ppo.minibatch");
                let mut actor_grads = self.policy.actor.zero_grads();
                let mut critic_grads = self.policy.critic.zero_grads();
                for &i in chunk {
                    let t = &buffer.transitions()[i];
                    let (ploss, ent, logp_new, clipped) =
                        self.accumulate_policy_grad(t, &mut actor_grads);
                    let vloss = self.accumulate_value_grad(t, &mut critic_grads);
                    stats.policy_loss += ploss;
                    stats.value_loss += vloss;
                    stats.entropy += ent;
                    stats.kl += t.logp - logp_new;
                    if clipped {
                        stats.clip_fraction += 1.0;
                    }
                    stat_count += 1;
                }
                let scale = 1.0 / chunk.len() as f32;
                actor_grads.scale(scale);
                critic_grads.scale(scale);
                actor_grads.clip_norm(self.cfg.max_grad_norm);
                critic_grads.clip_norm(self.cfg.max_grad_norm);
                self.actor_opt.step(&mut self.policy.actor, &actor_grads);
                self.critic_opt.step(&mut self.policy.critic, &critic_grads);
            }
        }
        if stat_count > 0 {
            let c = stat_count as f64;
            stats.policy_loss /= c;
            stats.value_loss /= c;
            stats.entropy /= c;
            stats.kl /= c;
            stats.clip_fraction /= c;
        }
        self.updates += 1;
        if let Some(series) = &mut self.telemetry {
            series.push(fleetio_obs::TrainingRecord {
                update: self.updates,
                policy_loss: stats.policy_loss,
                value_loss: stats.value_loss,
                entropy: stats.entropy,
                kl: stats.kl,
                clip_fraction: stats.clip_fraction,
                mean_reward: stats.mean_reward,
                samples: n as u64,
            });
        }
        stats
    }

    /// One iteration: collect a rollout and update. Returns diagnostics.
    pub fn train_iteration<E: MultiAgentEnv>(&mut self, env: &mut E, steps: usize) -> PpoStats {
        let buffer = self.collect_rollout(env, steps);
        self.update(buffer)
    }

    /// Accumulates the clipped-surrogate + entropy gradient for one sample.
    /// Returns `(policy_loss, entropy, logp_new, was_clipped)`.
    fn accumulate_policy_grad(
        &self,
        t: &Transition,
        grads: &mut fleetio_ml::MlpGrads,
    ) -> (f64, f64, f64, bool) {
        let cache = self.policy.actor.forward_cached(&t.obs);
        let logits = cache.output().to_vec();
        let heads = self.policy.split_heads(&logits);

        let mut logp_new = 0.0f64;
        let mut probs_per_head: Vec<Vec<f32>> = Vec::with_capacity(heads.len());
        let mut entropy = 0.0f64;
        for (head, &a) in heads.iter().zip(&t.action) {
            let lp = log_softmax(head);
            logp_new += f64::from(lp[a]);
            let p = softmax(head);
            entropy += -p
                .iter()
                .zip(&lp)
                .map(|(pi, lpi)| f64::from(pi * lpi))
                .sum::<f64>();
            probs_per_head.push(p);
        }
        entropy /= heads.len() as f64;

        let ratio = (logp_new - t.logp).exp();
        let adv = t.advantage;
        let clipped = (adv > 0.0 && ratio > 1.0 + self.cfg.clip)
            || (adv < 0.0 && ratio < 1.0 - self.cfg.clip);
        let surrogate = if clipped {
            ratio.clamp(1.0 - self.cfg.clip, 1.0 + self.cfg.clip) * adv
        } else {
            ratio * adv
        };
        let loss = -surrogate - self.cfg.entropy_coef * entropy;

        // dLoss/dlogits, concatenated across heads.
        let mut dlogits = vec![0.0f32; logits.len()];
        let mut off = 0;
        for (h, p) in probs_per_head.iter().enumerate() {
            let a = t.action[h];
            let head_h: f64 = -p
                .iter()
                .filter(|x| **x > 0.0)
                .map(|x| f64::from(*x) * f64::from(*x).ln())
                .sum::<f64>();
            for (i, &pi) in p.iter().enumerate() {
                let onehot = if i == a { 1.0 } else { 0.0 };
                // Surrogate gradient (zero when clipped).
                let dsurr = if clipped {
                    0.0
                } else {
                    adv * ratio * (onehot - f64::from(pi))
                };
                // Entropy gradient: dH/dz_i = −p_i (log p_i + H).
                let dent = if pi > 0.0 {
                    -f64::from(pi) * (f64::from(pi).ln() + head_h)
                } else {
                    0.0
                };
                dlogits[off + i] =
                    (-dsurr - self.cfg.entropy_coef * dent / probs_per_head.len() as f64) as f32;
            }
            off += p.len();
        }
        self.policy.actor.backward(&cache, &dlogits, grads);
        (loss, entropy, logp_new, clipped)
    }

    /// Accumulates the squared-error value gradient. Returns the loss.
    fn accumulate_value_grad(&self, t: &Transition, grads: &mut fleetio_ml::MlpGrads) -> f64 {
        let cache = self.policy.critic.forward_cached(&t.obs);
        let v = f64::from(cache.output()[0]);
        let err = v - t.ret;
        self.policy
            .critic
            .backward(&cache, &[(2.0 * err) as f32], grads);
        err * err
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::BanditEnv;

    #[test]
    fn config_validation() {
        assert!(PpoConfig::default().validate().is_ok());
        let mut c = PpoConfig {
            gamma: 1.5,
            ..PpoConfig::default()
        };
        assert!(c.validate().is_err());
        c = PpoConfig::default();
        c.minibatch = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn update_on_empty_buffer_is_safe() {
        let mut rng = SmallRng::seed_from_u64(0);
        let policy = PpoPolicy::new(2, &[3], &[8], &mut rng);
        let mut trainer = PpoTrainer::new(policy, 2, PpoConfig::default(), 0);
        let stats = trainer.update(RolloutBuffer::new());
        assert_eq!(stats.samples, 0);
    }

    #[test]
    fn telemetry_mirrors_update_stats() {
        let mut rng = SmallRng::seed_from_u64(3);
        let policy = PpoPolicy::new(2, &[3], &[8], &mut rng);
        let mut trainer = PpoTrainer::new(policy, 2, PpoConfig::default(), 3);
        trainer.enable_telemetry();
        let mut env = BanditEnv {
            steps: 0,
            horizon: 16,
        };
        let stats = trainer.train_iteration(&mut env, 32);
        let series = trainer.take_telemetry().expect("telemetry enabled");
        assert_eq!(series.len(), 1);
        let rec = &series.records()[0];
        assert_eq!(rec.update, 1);
        assert_eq!(rec.samples as usize, stats.samples);
        assert!((rec.policy_loss - stats.policy_loss).abs() < 1e-12);
        assert!((rec.kl - stats.kl).abs() < 1e-12);
        assert!(rec.kl.is_finite());
        // Empty updates are not recorded and do not advance the counter.
        trainer.enable_telemetry();
        trainer.update(RolloutBuffer::new());
        assert!(trainer.telemetry().expect("enabled").is_empty());
    }

    #[test]
    fn state_roundtrip_resumes_bit_identically() {
        // Run A: 6 uninterrupted iterations. Run B: 3 iterations, export →
        // restore, 3 more. The final full trainer states must match bit
        // for bit (Debug rendering compares every float exactly).
        let run = |interrupt: bool| -> String {
            let mut rng = SmallRng::seed_from_u64(17);
            let policy = PpoPolicy::new(2, &[3], &[8], &mut rng);
            let mut trainer = PpoTrainer::new(policy, 2, PpoConfig::default(), 17);
            let mut env = BanditEnv {
                steps: 0,
                horizon: 8,
            };
            for _ in 0..3 {
                trainer.train_iteration(&mut env, 16);
            }
            if interrupt {
                trainer =
                    PpoTrainer::from_state(trainer.export_state()).expect("exported state valid");
            }
            for _ in 0..3 {
                trainer.train_iteration(&mut env, 16);
            }
            assert_eq!(trainer.updates(), 6);
            format!("{:?}", trainer.export_state())
        };
        assert_eq!(run(false), run(true), "resume diverged from straight run");
    }

    #[test]
    fn from_state_rejects_cross_component_mismatch() {
        let mut rng = SmallRng::seed_from_u64(1);
        let policy = PpoPolicy::new(2, &[3], &[8], &mut rng);
        let trainer = PpoTrainer::new(policy, 2, PpoConfig::default(), 1);
        let mut bad = trainer.export_state();
        bad.actor_opt.m.push(0.0);
        bad.actor_opt.v.push(0.0);
        assert!(PpoTrainer::from_state(bad).is_err());
        let mut bad = trainer.export_state();
        bad.rng = [0; 4];
        assert!(PpoTrainer::from_state(bad).is_err());
        let mut bad = trainer.export_state();
        bad.cfg.minibatch = 0;
        assert!(PpoTrainer::from_state(bad).is_err());
        let mut bad = trainer.export_state();
        bad.normalizer.mean.push(0.0);
        bad.normalizer.m2.push(0.0);
        assert!(PpoTrainer::from_state(bad).is_err());
    }

    #[test]
    fn learns_bandit_task() {
        let mut rng = SmallRng::seed_from_u64(21);
        let policy = PpoPolicy::new(2, &[3], &[16], &mut rng);
        let cfg = PpoConfig {
            lr: 3e-3,
            critic_lr: 3e-3,
            ..Default::default()
        };
        let mut trainer = PpoTrainer::new(policy, 2, cfg, 7);
        let mut env = BanditEnv {
            steps: 0,
            horizon: 16,
        };
        let mut last = PpoStats::default();
        for _ in 0..60 {
            last = trainer.train_iteration(&mut env, 32);
        }
        // Near-perfect reward (each agent picks its own id).
        assert!(last.mean_reward > 0.9, "mean reward {}", last.mean_reward);
        // Greedy deployment behaviour matches.
        let a0 = trainer
            .policy
            .act_greedy(&trainer.normalizer.normalize(&[1.0, 0.0]));
        let a1 = trainer
            .policy
            .act_greedy(&trainer.normalizer.normalize(&[0.0, 1.0]));
        assert_eq!(a0, vec![0]);
        assert_eq!(a1, vec![1]);
    }

    #[test]
    fn entropy_decreases_with_training() {
        let mut rng = SmallRng::seed_from_u64(5);
        let policy = PpoPolicy::new(2, &[3], &[16], &mut rng);
        let cfg = PpoConfig {
            lr: 3e-3,
            critic_lr: 3e-3,
            ..Default::default()
        };
        let mut trainer = PpoTrainer::new(policy, 2, cfg, 9);
        let mut env = BanditEnv {
            steps: 0,
            horizon: 16,
        };
        let first = trainer.train_iteration(&mut env, 32);
        for _ in 0..50 {
            trainer.train_iteration(&mut env, 32);
        }
        let last = trainer.train_iteration(&mut env, 32);
        assert!(
            last.entropy < first.entropy,
            "entropy did not shrink: {} -> {}",
            first.entropy,
            last.entropy
        );
    }

    #[test]
    fn rollout_shapes() {
        let mut rng = SmallRng::seed_from_u64(2);
        let policy = PpoPolicy::new(2, &[3], &[8], &mut rng);
        let mut trainer = PpoTrainer::new(policy, 2, PpoConfig::default(), 1);
        let mut env = BanditEnv {
            steps: 0,
            horizon: 4,
        };
        let buf = trainer.collect_rollout(&mut env, 10);
        // 10 steps × 2 agents.
        assert_eq!(buf.len(), 20);
        // Episode boundaries: horizon 4 → dones at steps 4, 8 and the
        // truncated tail.
        let dones = buf.transitions().iter().filter(|t| t.done).count();
        assert_eq!(dones, 6); // 2 agents × (2 full episodes + 1 truncation)
    }
}
