//! Running observation normalization.
//!
//! Raw FleetIO states mix scales wildly (bytes/second against booleans and
//! percentages), which stalls MLP training. The normalizer tracks a running
//! mean/variance per feature and standardizes observations; it can be
//! frozen at deployment so inference is stationary.

/// Running per-feature mean/variance normalizer (Welford).
#[derive(Debug, Clone)]
pub struct ObsNormalizer {
    mean: Vec<f64>,
    m2: Vec<f64>,
    count: u64,
    frozen: bool,
    clip: f64,
}

/// The full serializable state of an [`ObsNormalizer`]. Produced by
/// [`ObsNormalizer::export_state`], consumed by
/// [`ObsNormalizer::from_state`]; the round trip is bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizerState {
    /// Running per-feature means.
    pub mean: Vec<f64>,
    /// Running per-feature sums of squared deviations (Welford M2).
    pub m2: Vec<f64>,
    /// Observations folded in.
    pub count: u64,
    /// Whether statistics are frozen.
    pub frozen: bool,
    /// Output clip in standard deviations.
    pub clip: f64,
}

impl ObsNormalizer {
    /// Creates a normalizer for `dim` features, clipping outputs to
    /// ±`clip` standard deviations (10 by default in callers).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or `clip` is not positive.
    pub fn new(dim: usize, clip: f64) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(clip > 0.0, "clip must be positive");
        ObsNormalizer {
            mean: vec![0.0; dim],
            m2: vec![0.0; dim],
            count: 0,
            frozen: false,
            clip,
        }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Stops further statistics updates (deployment mode).
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Whether statistics are frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Updates statistics with one raw observation (no-op when frozen).
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match.
    pub fn update(&mut self, obs: &[f32]) {
        assert_eq!(obs.len(), self.mean.len(), "dimension mismatch");
        if self.frozen {
            return;
        }
        self.count += 1;
        for (i, &x) in obs.iter().enumerate() {
            let x = f64::from(x);
            let delta = x - self.mean[i];
            self.mean[i] += delta / self.count as f64;
            self.m2[i] += delta * (x - self.mean[i]);
        }
    }

    /// Standardizes one observation using the current statistics.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match.
    pub fn normalize(&self, obs: &[f32]) -> Vec<f32> {
        assert_eq!(obs.len(), self.mean.len(), "dimension mismatch");
        if self.count < 2 {
            return obs.to_vec();
        }
        obs.iter()
            .enumerate()
            .map(|(i, &x)| {
                let var = self.m2[i] / self.count as f64;
                let std = var.sqrt().max(1e-8);
                let z = (f64::from(x) - self.mean[i]) / std;
                z.clamp(-self.clip, self.clip) as f32
            })
            .collect()
    }

    /// Standardizes `rows` observations held row-major in one flat
    /// slice, appending the standardized rows to `out`. Each row goes
    /// through the exact per-feature expression [`ObsNormalizer::normalize`]
    /// uses (including the `count < 2` passthrough), so the batched form
    /// is bit-identical to normalizing row by row.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the feature count.
    pub fn normalize_batch(&self, rows: &[f32], out: &mut Vec<f32>) {
        let dim = self.mean.len();
        assert_eq!(rows.len() % dim, 0, "batch is not whole rows");
        if self.count < 2 {
            out.extend_from_slice(rows);
            return;
        }
        out.reserve(rows.len());
        for row in rows.chunks_exact(dim) {
            for (i, &x) in row.iter().enumerate() {
                let var = self.m2[i] / self.count as f64;
                let std = var.sqrt().max(1e-8);
                let z = (f64::from(x) - self.mean[i]) / std;
                out.push(z.clamp(-self.clip, self.clip) as f32);
            }
        }
    }

    /// Convenience: update then normalize.
    pub fn observe(&mut self, obs: &[f32]) -> Vec<f32> {
        self.update(obs);
        self.normalize(obs)
    }

    /// Snapshots the running statistics for checkpointing.
    pub fn export_state(&self) -> NormalizerState {
        NormalizerState {
            mean: self.mean.clone(),
            m2: self.m2.clone(),
            count: self.count,
            frozen: self.frozen,
            clip: self.clip,
        }
    }

    /// Rebuilds a normalizer from an exported state.
    ///
    /// # Errors
    ///
    /// Returns a message when the state is inconsistent (empty or
    /// mismatched vectors, non-positive clip, negative M2).
    pub fn from_state(state: NormalizerState) -> Result<ObsNormalizer, String> {
        if state.mean.is_empty() {
            return Err("normalizer state has no features".to_string());
        }
        if state.mean.len() != state.m2.len() {
            return Err(format!(
                "mean/m2 length mismatch: {} vs {}",
                state.mean.len(),
                state.m2.len()
            ));
        }
        if !(state.clip.is_finite() && state.clip > 0.0) {
            return Err("clip must be positive".to_string());
        }
        if state.mean.iter().any(|x| !x.is_finite()) {
            return Err("non-finite mean entry".to_string());
        }
        if state.m2.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return Err("M2 entries must be finite and non-negative".to_string());
        }
        Ok(ObsNormalizer {
            mean: state.mean,
            m2: state.m2,
            count: state.count,
            frozen: state.frozen,
            clip: state.clip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_stream() {
        let mut n = ObsNormalizer::new(1, 10.0);
        for i in 0..1000 {
            n.update(&[i as f32]);
        }
        // Values near the mean map near zero.
        let z = n.normalize(&[499.5]);
        assert!(z[0].abs() < 0.01, "z {z:?}");
        // One std above mean maps near 1.
        let z = n.normalize(&[499.5 + 288.7]);
        assert!((z[0] - 1.0).abs() < 0.05, "z {z:?}");
    }

    #[test]
    fn clipping_bounds_output() {
        let mut n = ObsNormalizer::new(1, 5.0);
        for i in 0..100 {
            n.update(&[i as f32]);
        }
        let z = n.normalize(&[1e9]);
        assert_eq!(z[0], 5.0);
    }

    #[test]
    fn freeze_stops_updates() {
        let mut n = ObsNormalizer::new(1, 10.0);
        n.update(&[0.0]);
        n.update(&[1.0]);
        n.freeze();
        let before = n.normalize(&[0.5]);
        for _ in 0..100 {
            n.update(&[100.0]);
        }
        assert_eq!(n.normalize(&[0.5]), before);
        assert_eq!(n.count(), 2);
    }

    #[test]
    fn state_roundtrip_is_bit_exact() {
        let mut n = ObsNormalizer::new(3, 7.0);
        for i in 0..50 {
            n.update(&[i as f32, -2.0 * i as f32, 0.5]);
        }
        let back = ObsNormalizer::from_state(n.export_state()).expect("valid state");
        assert_eq!(back.export_state(), n.export_state());
        let probe = [13.0, -5.0, 0.25];
        assert_eq!(n.normalize(&probe), back.normalize(&probe));
    }

    #[test]
    fn from_state_rejects_bad_fields() {
        let n = ObsNormalizer::new(2, 5.0);
        let mut bad = n.export_state();
        bad.m2.pop();
        assert!(ObsNormalizer::from_state(bad).is_err());
        let mut bad = n.export_state();
        bad.clip = 0.0;
        assert!(ObsNormalizer::from_state(bad).is_err());
        let mut bad = n.export_state();
        bad.m2[0] = -1.0;
        assert!(ObsNormalizer::from_state(bad).is_err());
    }

    /// The batched apply must be bit-exact against the per-row apply,
    /// both warmed and in the `count < 2` passthrough regime.
    #[test]
    fn normalize_batch_is_bit_exact_per_row() {
        let mut n = ObsNormalizer::new(3, 5.0);
        let probe: Vec<f32> = (0..12).map(|i| (i as f32) * 1.7 - 9.0).collect();
        for warmed in [false, true] {
            if warmed {
                for i in 0..40 {
                    n.update(&[i as f32, 0.25 * i as f32, -3.0 * i as f32]);
                }
            }
            let mut batched = Vec::new();
            n.normalize_batch(&probe, &mut batched);
            assert_eq!(batched.len(), probe.len());
            for (r, row) in probe.chunks_exact(3).enumerate() {
                let single = n.normalize(row);
                for (i, (a, e)) in batched[r * 3..(r + 1) * 3].iter().zip(&single).enumerate() {
                    assert_eq!(a.to_bits(), e.to_bits(), "warmed {warmed} row {r} col {i}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "batch is not whole rows")]
    fn normalize_batch_rejects_ragged_input() {
        let n = ObsNormalizer::new(3, 5.0);
        n.normalize_batch(&[1.0, 2.0], &mut Vec::new());
    }

    #[test]
    fn passthrough_until_two_samples() {
        let mut n = ObsNormalizer::new(2, 10.0);
        assert_eq!(n.normalize(&[3.0, 4.0]), vec![3.0, 4.0]);
        n.update(&[1.0, 1.0]);
        assert_eq!(n.normalize(&[3.0, 4.0]), vec![3.0, 4.0]);
    }
}
