//! Running observation normalization.
//!
//! Raw FleetIO states mix scales wildly (bytes/second against booleans and
//! percentages), which stalls MLP training. The normalizer tracks a running
//! mean/variance per feature and standardizes observations; it can be
//! frozen at deployment so inference is stationary.

/// Running per-feature mean/variance normalizer (Welford).
#[derive(Debug, Clone)]
pub struct ObsNormalizer {
    mean: Vec<f64>,
    m2: Vec<f64>,
    count: u64,
    frozen: bool,
    clip: f64,
}

impl ObsNormalizer {
    /// Creates a normalizer for `dim` features, clipping outputs to
    /// ±`clip` standard deviations (10 by default in callers).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero or `clip` is not positive.
    pub fn new(dim: usize, clip: f64) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(clip > 0.0, "clip must be positive");
        ObsNormalizer {
            mean: vec![0.0; dim],
            m2: vec![0.0; dim],
            count: 0,
            frozen: false,
            clip,
        }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Stops further statistics updates (deployment mode).
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Whether statistics are frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Updates statistics with one raw observation (no-op when frozen).
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match.
    pub fn update(&mut self, obs: &[f32]) {
        assert_eq!(obs.len(), self.mean.len(), "dimension mismatch");
        if self.frozen {
            return;
        }
        self.count += 1;
        for (i, &x) in obs.iter().enumerate() {
            let x = f64::from(x);
            let delta = x - self.mean[i];
            self.mean[i] += delta / self.count as f64;
            self.m2[i] += delta * (x - self.mean[i]);
        }
    }

    /// Standardizes one observation using the current statistics.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match.
    pub fn normalize(&self, obs: &[f32]) -> Vec<f32> {
        assert_eq!(obs.len(), self.mean.len(), "dimension mismatch");
        if self.count < 2 {
            return obs.to_vec();
        }
        obs.iter()
            .enumerate()
            .map(|(i, &x)| {
                let var = self.m2[i] / self.count as f64;
                let std = var.sqrt().max(1e-8);
                let z = (f64::from(x) - self.mean[i]) / std;
                z.clamp(-self.clip, self.clip) as f32
            })
            .collect()
    }

    /// Convenience: update then normalize.
    pub fn observe(&mut self, obs: &[f32]) -> Vec<f32> {
        self.update(obs);
        self.normalize(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_stream() {
        let mut n = ObsNormalizer::new(1, 10.0);
        for i in 0..1000 {
            n.update(&[i as f32]);
        }
        // Values near the mean map near zero.
        let z = n.normalize(&[499.5]);
        assert!(z[0].abs() < 0.01, "z {z:?}");
        // One std above mean maps near 1.
        let z = n.normalize(&[499.5 + 288.7]);
        assert!((z[0] - 1.0).abs() < 0.05, "z {z:?}");
    }

    #[test]
    fn clipping_bounds_output() {
        let mut n = ObsNormalizer::new(1, 5.0);
        for i in 0..100 {
            n.update(&[i as f32]);
        }
        let z = n.normalize(&[1e9]);
        assert_eq!(z[0], 5.0);
    }

    #[test]
    fn freeze_stops_updates() {
        let mut n = ObsNormalizer::new(1, 10.0);
        n.update(&[0.0]);
        n.update(&[1.0]);
        n.freeze();
        let before = n.normalize(&[0.5]);
        for _ in 0..100 {
            n.update(&[100.0]);
        }
        assert_eq!(n.normalize(&[0.5]), before);
        assert_eq!(n.count(), 2);
    }

    #[test]
    fn passthrough_until_two_samples() {
        let mut n = ObsNormalizer::new(2, 10.0);
        assert_eq!(n.normalize(&[3.0, 4.0]), vec![3.0, 4.0]);
        n.update(&[1.0, 1.0]);
        assert_eq!(n.normalize(&[3.0, 4.0]), vec![3.0, 4.0]);
    }
}
