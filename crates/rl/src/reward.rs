//! Multi-agent reward mixing (Equation 2 of the paper).

/// Mixes per-agent rewards with coefficient `beta` (Equation 2):
///
/// `R_i = β · R_i + (1 − β) · mean(R_v for v ≠ i)`
///
/// With larger `beta` each agent cares more about its own reward; the
/// paper's default is 0.6. Single-agent inputs pass through unchanged.
///
/// # Panics
///
/// Panics unless `beta` is in `[0, 1]`.
///
/// # Example
///
/// ```
/// use fleetio_rl::reward::mix_rewards;
///
/// let mixed = mix_rewards(&[1.0, 0.0], 0.6);
/// assert!((mixed[0] - 0.6).abs() < 1e-12);
/// assert!((mixed[1] - 0.4).abs() < 1e-12);
/// ```
pub fn mix_rewards(rewards: &[f64], beta: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let n = rewards.len();
    if n <= 1 {
        return rewards.to_vec();
    }
    let total: f64 = rewards.iter().sum();
    rewards
        .iter()
        .map(|&r| {
            let others = (total - r) / (n - 1) as f64;
            beta * r + (1.0 - beta) * others
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_one_is_selfish() {
        assert_eq!(mix_rewards(&[3.0, 1.0, 2.0], 1.0), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn beta_zero_is_fully_altruistic() {
        let mixed = mix_rewards(&[4.0, 0.0], 0.0);
        assert_eq!(mixed, vec![0.0, 4.0]);
    }

    #[test]
    fn paper_default_beta() {
        let mixed = mix_rewards(&[1.0, 0.0, 0.5], 0.6);
        // Agent 0: 0.6·1 + 0.4·(0.25) = 0.7.
        assert!((mixed[0] - 0.7).abs() < 1e-12);
        // Agent 1: 0.6·0 + 0.4·(0.75) = 0.3.
        assert!((mixed[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn single_agent_passthrough() {
        assert_eq!(mix_rewards(&[2.5], 0.6), vec![2.5]);
        assert_eq!(mix_rewards(&[], 0.6), Vec::<f64>::new());
    }

    #[test]
    fn mixing_preserves_total() {
        let r = [1.0, 2.0, 3.0, 4.0];
        let mixed = mix_rewards(&r, 0.37);
        let a: f64 = r.iter().sum();
        let b: f64 = mixed.iter().sum();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "beta must be in [0, 1]")]
    fn bad_beta_panics() {
        let _ = mix_rewards(&[1.0], 1.5);
    }
}
