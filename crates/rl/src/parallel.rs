//! Parallel rollout collection (the stand-in for the paper's Ray cluster).
//!
//! Workers each own an environment instance and a clone of the current
//! policy; they collect rollouts concurrently with std scoped
//! threads. Observation-normalizer statistics are frozen during parallel
//! collection so every worker normalizes identically (the trainer's serial
//! warm-up collections feed the statistics).

use fleetio_des::rng::SmallRng;

use crate::buffer::{RolloutBuffer, Transition};
use crate::env::MultiAgentEnv;
use crate::normalize::ObsNormalizer;
use crate::policy::PpoPolicy;

/// Standardizes per-agent observation rows with one batched normalizer
/// apply (bit-identical per row to `normalizer.normalize`).
fn normalize_rows(normalizer: &ObsNormalizer, rows: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let dim = normalizer.dim();
    let flat: Vec<f32> = rows.concat();
    let mut out = Vec::with_capacity(flat.len());
    normalizer.normalize_batch(&flat, &mut out);
    out.chunks_exact(dim).map(|c| c.to_vec()).collect()
}

/// Collects one rollout from `env` with a frozen normalizer. Used by the
/// parallel workers and reusable for evaluation runs.
///
/// All per-agent policy inferences in a step run as one batched actor
/// pass and one batched critic pass; RNG draws keep the per-agent order
/// of the serial loop, so the collected rollout is byte-identical to
/// per-agent inference while costing one matrix pass per network.
pub fn collect_frozen<E: MultiAgentEnv>(
    env: &mut E,
    policy: &PpoPolicy,
    normalizer: &ObsNormalizer,
    steps: usize,
    gamma: f64,
    seed: u64,
) -> RolloutBuffer {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = env.n_agents();
    let mut per_agent: Vec<Vec<Transition>> = vec![Vec::new(); n];
    let mut obs: Vec<Vec<f32>> = normalize_rows(normalizer, &env.reset());
    for step in 0..steps {
        let flat: Vec<f32> = obs.concat();
        let values = policy.value_batch(&flat, n);
        let mut actions = Vec::with_capacity(n);
        let mut logps = Vec::with_capacity(n);
        for (a, lp) in policy.sample_batch(&flat, n, &mut rng) {
            actions.push(a);
            logps.push(lp);
        }
        let result = env.step(&actions);
        let next_obs = normalize_rows(normalizer, &result.observations);
        let truncated = step + 1 == steps && !result.done;
        let bootstrap = if truncated {
            let next_flat: Vec<f32> = next_obs.concat();
            policy.value_batch(&next_flat, n)
        } else {
            Vec::new()
        };
        for i in 0..n {
            let mut reward = result.rewards[i];
            if truncated {
                reward += gamma * bootstrap[i];
            }
            per_agent[i].push(Transition {
                obs: std::mem::take(&mut obs[i]),
                action: actions[i].clone(),
                logp: logps[i],
                reward,
                value: values[i],
                done: result.done || truncated,
                advantage: 0.0,
                ret: 0.0,
            });
        }
        obs = next_obs;
        if result.done {
            obs = normalize_rows(normalizer, &env.reset());
        }
    }
    let mut buffer = RolloutBuffer::new();
    for seq in per_agent {
        for t in seq {
            buffer.push(t);
        }
    }
    buffer
}

/// Collects rollouts from several environments in parallel and merges
/// them. Each factory builds one worker's environment; workers run on
/// their own threads with distinct RNG streams derived from `seed`.
pub fn collect_parallel<E, F>(
    factories: Vec<F>,
    policy: &PpoPolicy,
    normalizer: &ObsNormalizer,
    steps_per_worker: usize,
    gamma: f64,
    seed: u64,
) -> RolloutBuffer
where
    E: MultiAgentEnv,
    F: FnOnce() -> E + Send,
{
    let mut merged = RolloutBuffer::new();
    let results: Vec<RolloutBuffer> = std::thread::scope(|scope| {
        let handles: Vec<_> = factories
            .into_iter()
            .enumerate()
            .map(|(i, factory)| {
                let policy = policy.clone();
                let normalizer = normalizer.clone();
                scope.spawn(move || {
                    let _prof = fleetio_obs::prof::span("rollout.worker");
                    let mut env = factory();
                    collect_frozen(
                        &mut env,
                        &policy,
                        &normalizer,
                        steps_per_worker,
                        gamma,
                        seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for b in results {
        merged.extend(b);
    }
    merged
}

/// Collects rollouts from long-lived environments in parallel (one thread
/// per env) and merges them. Unlike [`collect_parallel`], the environments
/// persist across rounds, so continuing-task envs keep their state and
/// expensive setup is paid once.
pub fn collect_parallel_envs<E>(
    envs: &mut [E],
    policy: &PpoPolicy,
    normalizer: &ObsNormalizer,
    steps_per_env: usize,
    gamma: f64,
    seed: u64,
) -> RolloutBuffer
where
    E: MultiAgentEnv + Send,
{
    let mut merged = RolloutBuffer::new();
    let results: Vec<RolloutBuffer> = std::thread::scope(|scope| {
        let handles: Vec<_> = envs
            .iter_mut()
            .enumerate()
            .map(|(i, env)| {
                let policy = policy.clone();
                let normalizer = normalizer.clone();
                scope.spawn(move || {
                    let _prof = fleetio_obs::prof::span("rollout.worker");
                    collect_frozen(
                        env,
                        &policy,
                        &normalizer,
                        steps_per_env,
                        gamma,
                        seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for b in results {
        merged.extend(b);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::test_env::BanditEnv;
    use crate::ppo::{PpoConfig, PpoTrainer};

    fn policy() -> PpoPolicy {
        let mut rng = SmallRng::seed_from_u64(0);
        PpoPolicy::new(2, &[3], &[8], &mut rng)
    }

    #[test]
    fn frozen_collection_is_deterministic() {
        let p = policy();
        let norm = ObsNormalizer::new(2, 10.0);
        let mut e1 = BanditEnv {
            steps: 0,
            horizon: 8,
        };
        let mut e2 = BanditEnv {
            steps: 0,
            horizon: 8,
        };
        let a = collect_frozen(&mut e1, &p, &norm, 16, 0.9, 5);
        let b = collect_frozen(&mut e2, &p, &norm, 16, 0.9, 5);
        assert_eq!(a.transitions(), b.transitions());
    }

    #[test]
    fn parallel_collection_merges_all_workers() {
        let p = policy();
        let norm = ObsNormalizer::new(2, 10.0);
        let factories: Vec<Box<dyn FnOnce() -> BanditEnv + Send>> = (0..4)
            .map(|_| {
                Box::new(|| BanditEnv {
                    steps: 0,
                    horizon: 8,
                }) as _
            })
            .collect();
        let buf = collect_parallel(factories, &p, &norm, 10, 0.9, 3);
        // 4 workers × 10 steps × 2 agents.
        assert_eq!(buf.len(), 80);
    }

    #[test]
    fn persistent_env_collection_merges() {
        let p = policy();
        let norm = ObsNormalizer::new(2, 10.0);
        let mut envs: Vec<BanditEnv> = (0..3)
            .map(|_| BanditEnv {
                steps: 0,
                horizon: 8,
            })
            .collect();
        let a = collect_parallel_envs(&mut envs, &p, &norm, 10, 0.9, 1);
        assert_eq!(a.len(), 60);
        // Second round reuses the same envs.
        let b = collect_parallel_envs(&mut envs, &p, &norm, 10, 0.9, 2);
        assert_eq!(b.len(), 60);
    }

    #[test]
    fn parallel_rollouts_train_successfully() {
        let mut rng = SmallRng::seed_from_u64(13);
        let p = PpoPolicy::new(2, &[3], &[16], &mut rng);
        let cfg = PpoConfig {
            lr: 3e-3,
            critic_lr: 3e-3,
            ..Default::default()
        };
        let mut trainer = PpoTrainer::new(p, 2, cfg, 3);
        // Warm the normalizer serially once.
        let mut env = BanditEnv {
            steps: 0,
            horizon: 16,
        };
        let warm = trainer.collect_rollout(&mut env, 16);
        trainer.update(warm);
        trainer.normalizer.freeze();
        for round in 0..50 {
            let factories: Vec<Box<dyn FnOnce() -> BanditEnv + Send>> = (0..4)
                .map(|_| {
                    Box::new(|| BanditEnv {
                        steps: 0,
                        horizon: 16,
                    }) as _
                })
                .collect();
            let buf = collect_parallel(
                factories,
                &trainer.policy,
                &trainer.normalizer,
                16,
                trainer.config().gamma,
                100 + round,
            );
            trainer.update(buf);
        }
        let a0 = trainer
            .policy
            .act_greedy(&trainer.normalizer.normalize(&[1.0, 0.0]));
        let a1 = trainer
            .policy
            .act_greedy(&trainer.normalizer.normalize(&[0.0, 1.0]));
        assert_eq!((a0, a1), (vec![0], vec![1]));
    }
}
