//! The multi-agent environment interface.

/// Result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult {
    /// Next observation per agent.
    pub observations: Vec<Vec<f32>>,
    /// Reward per agent (already mixed if the env applies Equation 2).
    pub rewards: Vec<f64>,
    /// Whether the episode ended.
    pub done: bool,
}

/// A multi-agent environment with homogeneous observation and
/// multi-discrete action spaces (every agent shares the same spaces, as
/// FleetIO's per-vSSD agents do).
pub trait MultiAgentEnv {
    /// Number of agents (vSSDs).
    fn n_agents(&self) -> usize;

    /// Observation vector length per agent.
    fn obs_dim(&self) -> usize;

    /// Sizes of each discrete action head (e.g. `[5, 5, 3]` for harvest
    /// level, make-harvestable level, priority).
    fn action_dims(&self) -> Vec<usize>;

    /// Resets the environment, returning the initial per-agent
    /// observations.
    fn reset(&mut self) -> Vec<Vec<f32>>;

    /// Advances one decision window with `actions[agent][head]` chosen per
    /// agent.
    fn step(&mut self, actions: &[Vec<usize>]) -> StepResult;
}

#[cfg(test)]
pub(crate) mod test_env {
    use super::*;

    /// A tiny two-agent bandit-style env for trainer tests: each agent has
    /// one 3-way action head; reward is 1.0 for picking its own id, 0
    /// otherwise; observations are constant. PPO must learn agent-specific
    /// behaviour from a shared policy conditioned on the observation.
    pub struct BanditEnv {
        pub steps: usize,
        pub horizon: usize,
    }

    impl MultiAgentEnv for BanditEnv {
        fn n_agents(&self) -> usize {
            2
        }

        fn obs_dim(&self) -> usize {
            2
        }

        fn action_dims(&self) -> Vec<usize> {
            vec![3]
        }

        fn reset(&mut self) -> Vec<Vec<f32>> {
            self.steps = 0;
            vec![vec![1.0, 0.0], vec![0.0, 1.0]]
        }

        fn step(&mut self, actions: &[Vec<usize>]) -> StepResult {
            self.steps += 1;
            let rewards = actions
                .iter()
                .enumerate()
                .map(|(i, a)| if a[0] == i { 1.0 } else { 0.0 })
                .collect();
            StepResult {
                observations: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
                rewards,
                done: self.steps >= self.horizon,
            }
        }
    }
}
