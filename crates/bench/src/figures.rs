//! One entry point per paper figure (§4 evaluation).
//!
//! Every function returns [`FigureReport`]s whose rows mirror the series
//! the paper plots; the `figures` binary prints them and EXPERIMENTS.md
//! records paper-vs-measured. Absolute numbers reflect the simulated
//! device, so the comparisons to track are the *ratios and orderings*.

use fleetio::baselines::{AdaptivePolicy, FleetIoPolicy, StaticPolicy, WindowPolicy};
use fleetio::experiment::{
    hardware_layout, mixed_layout, planned_layout, run_collocation, software_layout,
    ExperimentOptions, RunMetrics,
};
use fleetio::mixes::{evaluation_pairs, table5_mixes};
use fleetio::typing::TypingModel;
use fleetio_des::rng::SmallRng;
use fleetio_des::{SimDuration, SimTime};
use fleetio_ml::Pca;
use fleetio_workloads::features::windowed_features;
use fleetio_workloads::{WorkloadCategory, WorkloadKind};

use crate::context::{ModelVariant, SharedContext};
use crate::report::FigureReport;

/// Which policy drives a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// Equal hardware-isolated split (§4.1 baseline).
    Hardware,
    /// All channels shared, stride-scheduled (§4.1 baseline).
    Software,
    /// Bandwidth shares re-provisioned per window (§4.1 Adaptive, eZNS-style).
    Adaptive,
    /// DNN-planned static hardware partition (§4.1 SSDKeeper).
    SsdKeeper,
    /// FleetIO with a pre-trained model variant.
    FleetIo(ModelVariant),
    /// The scripted reference policy (mechanism-level ablation).
    Heuristic,
}

impl PolicySpec {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            PolicySpec::Hardware => "hardware-iso",
            PolicySpec::Software => "software-iso",
            PolicySpec::Adaptive => "adaptive",
            PolicySpec::SsdKeeper => "ssdkeeper",
            PolicySpec::FleetIo(ModelVariant::Full) => "fleetio",
            PolicySpec::FleetIo(ModelVariant::UnifiedGlobal) => "fleetio-unified-global",
            PolicySpec::FleetIo(ModelVariant::CustomizedLocal) => "fleetio-customized-local",
            PolicySpec::Heuristic => "heuristic",
        }
    }

    /// The five §4.2 policies in the paper's legend order.
    pub fn headline() -> [PolicySpec; 5] {
        [
            PolicySpec::Hardware,
            PolicySpec::SsdKeeper,
            PolicySpec::Adaptive,
            PolicySpec::Software,
            PolicySpec::FleetIo(ModelVariant::Full),
        ]
    }
}

/// Runs one collocation of `workloads` under `spec`. SLOs for
/// latency-sensitive tenants come from the equal-share hardware-isolation
/// calibration regardless of policy (the paper's normalization baseline).
pub fn run_combo(
    ctx: &mut SharedContext,
    spec: PolicySpec,
    workloads: &[WorkloadKind],
    seed_offset: u64,
) -> RunMetrics {
    let total = usize::from(ctx.cfg.engine.flash.channels);
    let share = total / workloads.len();
    let slos: Vec<Option<SimDuration>> = workloads
        .iter()
        .map(|k| (k.category() == WorkloadCategory::LatencySensitive).then(|| ctx.slo(*k, share)))
        .collect();
    let opts: ExperimentOptions = ctx
        .scale
        .experiment_options(&ctx.cfg, ctx.seed.wrapping_add(seed_offset));
    let peak = ctx.device_peak();
    let seed = opts.seed;
    let tenants = match spec {
        PolicySpec::Hardware | PolicySpec::FleetIo(_) | PolicySpec::Heuristic => {
            hardware_layout(&ctx.cfg, workloads, &slos, seed)
        }
        PolicySpec::SsdKeeper => {
            let planner = ctx.ssdkeeper();
            let feats: Vec<_> = workloads.iter().map(|k| ctx.features(*k)).collect();
            let plan = planner.plan(&feats, total);
            planned_layout(&ctx.cfg, workloads, &plan, &slos, seed)
        }
        PolicySpec::Software | PolicySpec::Adaptive => {
            software_layout(&ctx.cfg, workloads, &slos, seed)
        }
    };
    let mut policy: Box<dyn WindowPolicy> = match spec {
        PolicySpec::Hardware => Box::new(StaticPolicy::hardware()),
        PolicySpec::Software => Box::new(StaticPolicy::software()),
        PolicySpec::SsdKeeper => Box::new(StaticPolicy::ssdkeeper()),
        PolicySpec::Adaptive => Box::new(AdaptivePolicy::new(peak, total)),
        PolicySpec::FleetIo(variant) => {
            let model = ctx.model(variant);
            let cfg = variant.apply(&ctx.cfg);
            Box::new(FleetIoPolicy::new(cfg, &model, workloads.len()))
        }
        PolicySpec::Heuristic => {
            let share = usize::from(ctx.cfg.engine.flash.channels) / workloads.len();
            let spec: Vec<(usize, WorkloadKind)> = workloads.iter().map(|k| (share, *k)).collect();
            Box::new(fleetio::baselines::HeuristicPolicy::new(
                ctx.cfg.clone(),
                &spec,
            ))
        }
    };
    run_collocation(policy.as_mut(), tenants, &opts, peak, None)
}

fn pair_label(lc: WorkloadKind, bi: WorkloadKind) -> String {
    format!("{lc}+{bi}")
}

/// Figures 2 and 3: the motivation study — hardware vs software isolation
/// across the six evaluation pairs.
pub fn fig2_3(ctx: &mut SharedContext) -> Vec<FigureReport> {
    let mut fig2 = FigureReport::new(
        "fig2",
        "SSD bandwidth utilization, hardware vs software isolation (avg and P95, %)",
        &["hw_avg", "hw_p95", "sw_avg", "sw_p95"],
    );
    let mut fig3a = FigureReport::new(
        "fig3a",
        "BI workload bandwidth (MB/s) and software/hardware ratio",
        &["hw_mbs", "sw_mbs", "sw_over_hw"],
    );
    let mut fig3b = FigureReport::new(
        "fig3b",
        "LC workload P99 latency (ms) and software/hardware ratio",
        &["hw_ms", "sw_ms", "sw_over_hw"],
    );
    for (i, (lc, bi)) in evaluation_pairs().into_iter().enumerate() {
        let hw = run_combo(ctx, PolicySpec::Hardware, &[lc, bi], i as u64);
        let sw = run_combo(ctx, PolicySpec::Software, &[lc, bi], i as u64);
        fig2.row(
            &pair_label(lc, bi),
            vec![
                hw.avg_utilization * 100.0,
                hw.p95_utilization * 100.0,
                sw.avg_utilization * 100.0,
                sw.p95_utilization * 100.0,
            ],
        );
        let hw_bw = hw.bi_bandwidth().expect("BI tenant present") / 1e6;
        let sw_bw = sw.bi_bandwidth().expect("BI tenant present") / 1e6;
        fig3a.row(&format!("{bi}(+{lc})"), vec![hw_bw, sw_bw, sw_bw / hw_bw]);
        let hw_p99 = hw.lc_p99().expect("LC tenant present").as_millis_f64();
        let sw_p99 = sw.lc_p99().expect("LC tenant present").as_millis_f64();
        fig3b.row(
            &format!("{lc}(+{bi})"),
            vec![hw_p99, sw_p99, sw_p99 / hw_p99],
        );
    }
    fig2.note(
        "paper: software isolation improves average utilization up to 1.52x (1.39x avg)".into(),
    );
    fig3a
        .note("paper: up to 1.84x (1.64x avg) higher BI bandwidth under software isolation".into());
    fig3b.note("paper: up to 2.02x higher LC tail latency under software isolation".into());
    vec![fig2, fig3a, fig3b]
}

/// Figure 6: workload-type clustering — k-means over per-window I/O
/// features with a 70/30 split, plus 2-D PCA coordinates.
pub fn fig6(ctx: &mut SharedContext) -> FigureReport {
    // The eight workloads shown in the paper's Figure 6.
    use WorkloadKind::*;
    let kinds = [
        MlPrep,
        PageRank,
        TeraSort,
        Ycsb,
        LiveMaps,
        SearchEngine,
        Tpce,
        VdiWeb,
    ];
    let (windows, reqs) = ctx.scale.clustering();
    let mut samples = Vec::new();
    for kind in kinds {
        let per = fleetio::experiment::workload_feature_windows(
            &ctx.cfg,
            kind,
            8,
            windows,
            reqs,
            ctx.seed ^ 0xF16,
        );
        for f in per {
            samples.push((kind, f));
        }
    }
    let model = TypingModel::fit(&samples, ctx.seed ^ 0x6);
    let scaled = model.scaled_features(&samples);
    let mut rng = SmallRng::seed_from_u64(ctx.seed ^ 0xFCA);
    let pca = Pca::fit(&scaled, 2, &mut rng);

    let mut report = FigureReport::new(
        "fig6",
        "Workload clustering: PCA centroid per workload + held-out accuracy",
        &["pc1", "pc2", "cluster"],
    );
    for kind in kinds {
        let points: Vec<Vec<f64>> = samples
            .iter()
            .zip(&scaled)
            .filter(|((k, _), _)| *k == kind)
            .map(|(_, s)| pca.transform(s))
            .collect();
        let n = points.len().max(1) as f64;
        let (sx, sy) = points
            .iter()
            .fold((0.0, 0.0), |acc, p| (acc.0 + p[0], acc.1 + p[1]));
        // Majority cluster assignment for the workload.
        let mut votes = [0usize; 3];
        for (k, f) in &samples {
            if *k == kind {
                if let Some(t) = model.classify(*f) {
                    votes[match t {
                        fleetio::typing::WorkloadType::Lc1 => 0,
                        fleetio::typing::WorkloadType::Lc2 => 1,
                        fleetio::typing::WorkloadType::Bi => 2,
                    }] += 1;
                }
            }
        }
        let cluster = votes
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i as f64)
            .unwrap_or(-1.0);
        report.row(kind.name(), vec![sx / n, sy / n, cluster]);
    }
    report.note(format!(
        "held-out clustering accuracy: {:.1}% (paper: 98.4%); clusters: 0=LC-1, 1=LC-2 (YCSB), 2=BI",
        model.test_accuracy() * 100.0
    ));
    report
}

/// Figures 10–13: the headline comparison — five policies across the six
/// evaluation pairs. One run per (pair, policy) feeds all four figures.
pub fn fig10_13(ctx: &mut SharedContext) -> Vec<FigureReport> {
    let mut fig10 = FigureReport::new(
        "fig10",
        "Trade-off: utilization improvement (x over HW) vs normalized LC P99 (x over HW)",
        &["util_impr", "norm_p99"],
    );
    let mut fig11 = FigureReport::new(
        "fig11",
        "Bandwidth utilization (%)",
        &["util_pct", "p95_util_pct"],
    );
    let mut fig12 = FigureReport::new(
        "fig12",
        "Normalized LC P99 latency (x over HW; abs ms in col 2; SLO violations % in col 3)",
        &["norm_p99", "p99_ms", "vio_pct"],
    );
    let mut fig13 = FigureReport::new(
        "fig13",
        "Normalized BI bandwidth (x over HW; abs MB/s in col 2)",
        &["norm_bw", "bw_mbs"],
    );
    for (i, (lc, bi)) in evaluation_pairs().into_iter().enumerate() {
        let mut hw_p99 = 1.0;
        let mut hw_bw = 1.0;
        let mut hw_util = 1.0;
        for spec in PolicySpec::headline() {
            let m = run_combo(ctx, spec, &[lc, bi], i as u64 * 17);
            let label = format!("{}/{}", pair_label(lc, bi), spec.label());
            let p99 = m.lc_p99().expect("LC tenant").as_millis_f64();
            let bw = m.bi_bandwidth().expect("BI tenant") / 1e6;
            if spec == PolicySpec::Hardware {
                hw_p99 = p99;
                hw_bw = bw;
                hw_util = m.avg_utilization;
            }
            let vio = m
                .tenants
                .iter()
                .find(|t| t.kind == lc)
                .map(|t| t.slo_violation_rate * 100.0)
                .unwrap_or(0.0);
            fig10.row(&label, vec![m.avg_utilization / hw_util, p99 / hw_p99]);
            fig11.row(
                &label,
                vec![m.avg_utilization * 100.0, m.p95_utilization * 100.0],
            );
            fig12.row(&label, vec![p99 / hw_p99, p99, vio]);
            fig13.row(&label, vec![bw / hw_bw, bw]);
        }
    }
    fig10.note(
        "paper: FleetIO ~1.30x util improvement at ~1.1-1.2x P99; SW/AD at ~1.76-2.03x P99".into(),
    );
    fig12.note("paper: FleetIO 1.29-1.89x lower P99 than SW/Adaptive".into());
    fig13.note("paper: FleetIO 1.27-1.61x over HW (1.46x avg), 89% of SW's bandwidth".into());
    vec![fig10, fig11, fig12, fig13]
}

/// Figure 14: scalability over Table 5's mixes (2, 4 and 8 vSSDs).
pub fn fig14(ctx: &mut SharedContext) -> Vec<FigureReport> {
    let mut a = FigureReport::new(
        "fig14a",
        "Scalability: average bandwidth utilization (%) per mix",
        &["util_pct"],
    );
    let mut b = FigureReport::new(
        "fig14b",
        "Scalability: per-LC-tenant P99 normalized to HW",
        &["norm_p99"],
    );
    let mut c = FigureReport::new(
        "fig14c",
        "Scalability: per-BI-tenant bandwidth normalized to HW",
        &["norm_bw"],
    );
    for (mi, mix) in table5_mixes().into_iter().enumerate() {
        let mut per_policy: Vec<(PolicySpec, RunMetrics)> = Vec::new();
        for spec in PolicySpec::headline() {
            let m = run_combo(ctx, spec, &mix.workloads, 1000 + mi as u64 * 31);
            per_policy.push((spec, m));
        }
        let hw = per_policy
            .iter()
            .find(|(s, _)| *s == PolicySpec::Hardware)
            .map(|(_, m)| m.clone())
            .expect("hardware run present");
        for (spec, m) in &per_policy {
            a.row(
                &format!("{}/{}", mix.label, spec.label()),
                vec![m.avg_utilization * 100.0],
            );
            for (ti, t) in m.tenants.iter().enumerate() {
                let base = &hw.tenants[ti];
                match t.kind.category() {
                    WorkloadCategory::LatencySensitive => {
                        let norm = t.p99.as_millis_f64() / base.p99.as_millis_f64().max(1e-9);
                        b.row(
                            &format!(
                                "{}/{}/{}{}",
                                mix.label,
                                spec.label(),
                                t.kind.short_label(),
                                ti
                            ),
                            vec![norm],
                        );
                    }
                    WorkloadCategory::BandwidthIntensive => {
                        let norm = t.avg_bandwidth / base.avg_bandwidth.max(1.0);
                        c.row(
                            &format!(
                                "{}/{}/{}{}",
                                mix.label,
                                spec.label(),
                                t.kind.short_label(),
                                ti
                            ),
                            vec![norm],
                        );
                    }
                }
            }
        }
    }
    a.note("paper: FleetIO 1.33x (4 vSSDs) and 1.18x (8 vSSDs) over HW, 94-99% of SW".into());
    b.note("paper: FleetIO keeps P99 increase over HW below 10%".into());
    c.note("paper: FleetIO improves each BI vSSD by at least 1.25x (1.45x avg)".into());
    vec![a, b, c]
}

/// Figure 15: the reward-function ablation across the six pairs.
pub fn fig15(ctx: &mut SharedContext) -> Vec<FigureReport> {
    let variants = [
        PolicySpec::Hardware,
        PolicySpec::FleetIo(ModelVariant::CustomizedLocal),
        PolicySpec::FleetIo(ModelVariant::UnifiedGlobal),
        PolicySpec::FleetIo(ModelVariant::Full),
        PolicySpec::Software,
    ];
    let mut a = FigureReport::new(
        "fig15a",
        "Reward ablation: average bandwidth utilization (%)",
        &["util_pct"],
    );
    let mut b = FigureReport::new(
        "fig15b",
        "Reward ablation: LC P99 normalized to HW",
        &["norm_p99"],
    );
    for (i, (lc, bi)) in evaluation_pairs().into_iter().enumerate() {
        let mut hw_p99 = 1.0;
        for spec in variants {
            let m = run_combo(ctx, spec, &[lc, bi], 2000 + i as u64 * 13);
            let p99 = m.lc_p99().expect("LC tenant").as_millis_f64();
            if spec == PolicySpec::Hardware {
                hw_p99 = p99;
            }
            let label = format!("{}/{}", pair_label(lc, bi), spec.label());
            a.row(&label, vec![m.avg_utilization * 100.0]);
            b.row(&label, vec![p99 / hw_p99]);
        }
    }
    a.note("paper: Customized-Local ~= HW (no incentive to offer); Unified-Global effective but inconsistent".into());
    vec![a, b]
}

/// Figure 16: mixed hardware- and software-isolated vSSDs (Table 5 mix3:
/// two VDI-Web on 4-channel HW vSSDs, two TeraSort sharing 8 channels).
pub fn fig16(ctx: &mut SharedContext) -> FigureReport {
    use WorkloadKind::*;
    let hw_tenants = [VdiWeb, VdiWeb];
    let sw_tenants = [TeraSort, TeraSort];
    let slo = ctx.slo(VdiWeb, 4);
    let opts = ctx.scale.experiment_options(&ctx.cfg, ctx.seed ^ 0x16);
    let peak = ctx.device_peak();

    let mut report = FigureReport::new(
        "fig16",
        "Mixed isolation (mix3): utilization (%), VDI P99 (ms), TeraSort bandwidth (MB/s)",
        &["util_pct", "vdi_p99_ms", "tera_mbs"],
    );
    // Mixed Isolation (static), Software Isolation (everything shared),
    // FleetIO on the mixed layout.
    let mk_layout = |ctx: &mut SharedContext| {
        mixed_layout(
            &ctx.cfg,
            &hw_tenants,
            4,
            &sw_tenants,
            &[Some(slo), Some(slo)],
            opts.seed,
        )
    };
    let summarize = |m: &RunMetrics| {
        let vdi: Vec<f64> = m
            .tenants
            .iter()
            .filter(|t| t.kind == VdiWeb)
            .map(|t| t.p99.as_millis_f64())
            .collect();
        let tera: Vec<f64> = m
            .tenants
            .iter()
            .filter(|t| t.kind == TeraSort)
            .map(|t| t.avg_bandwidth / 1e6)
            .collect();
        (
            m.avg_utilization * 100.0,
            vdi.iter().sum::<f64>() / vdi.len().max(1) as f64,
            tera.iter().sum::<f64>() / tera.len().max(1) as f64,
        )
    };

    let tenants = mk_layout(ctx);
    let mut p = StaticPolicy::mixed();
    let m = run_collocation(&mut p, tenants, &opts, peak, None);
    let (u, v, t) = summarize(&m);
    report.row("mixed-isolation", vec![u, v, t]);

    // Same seed basis as the mixed-layout rows so the three compared rows
    // replay the same request streams.
    let sw_tenants = software_layout(
        &ctx.cfg,
        &[VdiWeb, VdiWeb, TeraSort, TeraSort],
        &[Some(slo), Some(slo), None, None],
        opts.seed,
    );
    let mut sw_policy = StaticPolicy::software();
    let sw = run_collocation(&mut sw_policy, sw_tenants, &opts, peak, None);
    let (u, v, t) = summarize(&sw);
    report.row("software-isolation", vec![u, v, t]);

    let tenants = mk_layout(ctx);
    let model = ctx.model(ModelVariant::Full);
    let mut p = FleetIoPolicy::new(ctx.cfg.clone(), &model, 4);
    let m = run_collocation(&mut p, tenants, &opts, peak, None);
    let (u, v, t) = summarize(&m);
    report.row("fleetio", vec![u, v, t]);

    report.note(
        "paper: FleetIO 1.27x utilization over Mixed Isolation, 1.42x TeraSort bandwidth, P99 +1.19x"
            .into(),
    );
    report
}

/// Figure 17: robustness — a model tuned on one collocation evaluated on
/// another (Transfer) vs a model tuned on the evaluated collocation
/// (PreTrained). The paper swaps the collocated workload halfway; here the
/// transfer model simply runs the new combination cold.
pub fn fig17(ctx: &mut SharedContext) -> FigureReport {
    use WorkloadKind::*;
    // (kept workload, tuned partner, evaluated partner); labels follow the
    // paper: "T + (V->Y)" keeps TeraSort, tunes with VDI, evaluates on YCSB.
    let combos = [
        (TeraSort, VdiWeb, Ycsb),
        (MlPrep, VdiWeb, Ycsb),
        (PageRank, VdiWeb, Ycsb),
        (VdiWeb, TeraSort, MlPrep),
        (VdiWeb, MlPrep, PageRank),
        (Ycsb, PageRank, TeraSort),
    ];
    let mut report = FigureReport::new(
        "fig17",
        "Robustness: Transfer vs PreTrained (utilization %, kept-tenant metric ratio T/P)",
        &["transfer_util", "pretrained_util", "metric_ratio"],
    );
    // Tuning = a short behaviour-cloning + PPO pass on the specific combo.
    let tune = |ctx: &mut SharedContext, a: WorkloadKind, b: WorkloadKind| {
        let share = usize::from(ctx.cfg.engine.flash.channels) / 2;
        let slo_a = (a.category() == WorkloadCategory::LatencySensitive).then(|| ctx.slo(a, share));
        let slo_b = (b.category() == WorkloadCategory::LatencySensitive).then(|| ctx.slo(b, share));
        let scenario = hardware_layout(&ctx.cfg, &[a, b], &[slo_a, slo_b], ctx.seed ^ 0x17);
        let mut opts = ctx.scale.pretrain_options();
        opts.iterations = opts.iterations.min(4);
        opts.bc_rounds = opts.bc_rounds.min(3);
        fleetio::agent::pretrain(&ctx.cfg, &[scenario], 0.5, opts, ctx.seed ^ 0x1717)
    };
    for (i, (kept, tuned_with, eval_with)) in combos.into_iter().enumerate() {
        let order = |x: WorkloadKind, y: WorkloadKind| -> Vec<WorkloadKind> {
            // Keep LC first for consistent tenant indexing.
            if x.category() == WorkloadCategory::LatencySensitive {
                vec![x, y]
            } else {
                vec![y, x]
            }
        };
        let eval_combo = order(kept, eval_with);
        let transfer_model = tune(ctx, order(kept, tuned_with)[0], order(kept, tuned_with)[1]);
        let pretrained_model = tune(ctx, eval_combo[0], eval_combo[1]);

        let run_with = |ctx: &mut SharedContext,
                        model: &fleetio::agent::PretrainedModel,
                        seed_off: u64| {
            let share = usize::from(ctx.cfg.engine.flash.channels) / 2;
            let slos: Vec<Option<SimDuration>> = eval_combo
                .iter()
                .map(|k| {
                    (k.category() == WorkloadCategory::LatencySensitive).then(|| ctx.slo(*k, share))
                })
                .collect();
            let opts = ctx
                .scale
                .experiment_options(&ctx.cfg, ctx.seed.wrapping_add(seed_off));
            let peak = ctx.device_peak();
            let tenants = hardware_layout(&ctx.cfg, &eval_combo, &slos, opts.seed);
            let mut p = FleetIoPolicy::new(ctx.cfg.clone(), model, 2);
            run_collocation(&mut p, tenants, &opts, peak, None)
        };
        let t = run_with(ctx, &transfer_model, 3000 + i as u64);
        let p = run_with(ctx, &pretrained_model, 3000 + i as u64);
        // Kept-tenant metric: bandwidth for BI, P99 for LC.
        let metric = |m: &RunMetrics| {
            let tm = m
                .tenants
                .iter()
                .find(|t| t.kind == kept)
                .expect("kept tenant");
            match kept.category() {
                WorkloadCategory::BandwidthIntensive => tm.avg_bandwidth,
                WorkloadCategory::LatencySensitive => tm.p99.as_millis_f64(),
            }
        };
        let label = format!(
            "{} + ({}->{})",
            kept.short_label(),
            tuned_with.short_label(),
            eval_with.short_label()
        );
        report.row(
            &label,
            vec![
                t.avg_utilization * 100.0,
                p.avg_utilization * 100.0,
                metric(&t) / metric(&p).max(1e-9),
            ],
        );
    }
    report.note("paper: Transfer within 5% of PreTrained on every combination".into());
    report
}

/// §4.7: overhead microbenchmarks (gSB creation, admission batches,
/// inference), measured in wall-clock time on this machine.
pub fn overheads(ctx: &mut SharedContext) -> FigureReport {
    use fleetio_vssd::admission::{AdmissionControl, HarvestAction};
    use fleetio_vssd::engine::{Engine, EngineConfig};
    use fleetio_vssd::vssd::{VssdConfig, VssdId};
    use std::time::Instant;

    /// The one timed loop of this figure: runs `f` `ops` times, records
    /// the total under a profiler span, returns mean microseconds/op.
    fn per_op_us(span: &str, ops: u32, mut f: impl FnMut()) -> f64 {
        let t0 = Instant::now();
        for _ in 0..ops {
            f();
        }
        let total = t0.elapsed();
        fleetio_obs::prof::record_span(span, total);
        total.as_secs_f64() * 1e6 / f64::from(ops)
    }

    let mut report = FigureReport::new(
        "overheads",
        "§4.7 overheads (measured wall-clock on this host)",
        &["value", "unit_us"],
    );

    // gSB creation: metadata-only (< 1 µs in the paper).
    let cfg: EngineConfig = ctx.cfg.engine.clone();
    let chans: Vec<_> = (0..8u16).map(fleetio_flash::addr::ChannelId).collect();
    let other: Vec<_> = (8..16u16).map(fleetio_flash::addr::ChannelId).collect();
    let mut engine = Engine::new(
        cfg,
        vec![
            VssdConfig::hardware(VssdId(0), chans),
            VssdConfig::hardware(VssdId(1), other),
        ],
    );
    let mut i = 0u32;
    let gsb_us = per_op_us("overheads.gsb_cycle", 2000, || {
        engine.set_harvestable_target(VssdId(0), if i.is_multiple_of(2) { 4 } else { 0 });
        i += 1;
    });
    report.row("gsb_create_reclaim_cycle", vec![gsb_us, 1.0]);

    // Admission control: a batch of 1 000 actions (0.8 ms in the paper).
    let mut ac = AdmissionControl::new();
    let ch_bw = ctx.cfg.engine.flash.channel_peak_bytes_per_sec();
    let batch_us = per_op_us("overheads.admission_batch", 200, || {
        for i in 0..1000u32 {
            let v = VssdId(i % 8);
            if i % 2 == 0 {
                ac.submit(HarvestAction::MakeHarvestable {
                    vssd: v,
                    bytes_per_sec: ch_bw,
                });
            } else {
                ac.submit(HarvestAction::Harvest {
                    vssd: v,
                    bytes_per_sec: ch_bw,
                });
            }
        }
        let _ = ac.drain_batch(8, &[], ch_bw);
    });
    report.row("admission_batch_1000_actions", vec![batch_us, 1.0]);

    // Inference: one greedy decision (1.1 ms per window in the paper).
    let model = ctx.model(ModelVariant::Full);
    let mut agent = fleetio::FleetIoAgent::new(&model, ctx.cfg.history_windows);
    let state = fleetio::StateVector::zero();
    let infer_us = per_op_us("overheads.inference", 10_000, || {
        let _ = agent.decide(state);
    });
    report.row("inference_per_decision", vec![infer_us, 1.0]);

    // Model footprint (2.2 MB / ~9 K parameters in the paper).
    report.row(
        "model_parameters",
        vec![model.policy.n_params() as f64, 0.0],
    );
    report.row("model_bytes", vec![model.approx_size_bytes() as f64, 0.0]);
    report.note("paper: gSB creation <1us, admission 0.8ms/1000 actions, inference 1.1ms, model 2.2MB/9K params".into());
    report
}

/// Validates Table 4/5 and the feature pipeline end-to-end (cheap sanity
/// pass used by the `tables` subcommand).
pub fn tables(ctx: &mut SharedContext) -> FigureReport {
    let mut report = FigureReport::new(
        "tables",
        "Tables 3-5 sanity: config defaults and workload catalogue",
        &["value"],
    );
    report.row(
        "decision_interval_s",
        vec![ctx.cfg.decision_interval.as_secs_f64()],
    );
    report.row("beta", vec![ctx.cfg.beta]);
    report.row("gamma", vec![ctx.cfg.gamma]);
    report.row("batch_size", vec![ctx.cfg.batch_size as f64]);
    report.row("channels", vec![f64::from(ctx.cfg.engine.flash.channels)]);
    report.row(
        "chips_per_channel",
        vec![f64::from(ctx.cfg.engine.flash.chips_per_channel)],
    );
    report.row(
        "page_kb",
        vec![f64::from(ctx.cfg.engine.flash.page_bytes) / 1024.0],
    );
    report.row(
        "overprovisioning",
        vec![ctx.cfg.engine.flash.overprovisioning],
    );
    report.row(
        "eval_workloads",
        vec![WorkloadKind::EVALUATION.len() as f64],
    );
    report.row("mixes", vec![table5_mixes().len() as f64]);
    let _ = SimTime::ZERO;
    report
}

/// One window's worth of the clustering feature pipeline, used by tests.
pub fn clustering_features_smoke(seed: u64) -> usize {
    let spec = WorkloadKind::Ycsb.spec();
    let mut w = fleetio_workloads::SyntheticWorkload::new(spec, 1 << 30, seed);
    let recs = w.requests_until(SimTime::from_secs(3));
    windowed_features(&recs, 1 << 30, 1000).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_labels_are_unique() {
        let mut labels: Vec<&str> = PolicySpec::headline().iter().map(|p| p.label()).collect();
        labels.push(PolicySpec::FleetIo(ModelVariant::UnifiedGlobal).label());
        labels.push(PolicySpec::FleetIo(ModelVariant::CustomizedLocal).label());
        labels.push(PolicySpec::Heuristic.label());
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }

    #[test]
    fn headline_has_five_policies_with_hardware_first() {
        let h = PolicySpec::headline();
        assert_eq!(h.len(), 5);
        assert_eq!(h[0], PolicySpec::Hardware);
        assert!(h.contains(&PolicySpec::FleetIo(ModelVariant::Full)));
    }

    #[test]
    fn feature_pipeline_smoke() {
        assert!(clustering_features_smoke(3) > 3);
    }
}
