//! A minimal wall-clock micro-benchmark harness on pure `std`.
//!
//! The workspace builds offline with no external crates, so the bench
//! targets time themselves with `std::time::Instant` instead of criterion.
//! Each benchmark auto-calibrates its iteration count to a target budget,
//! then reports mean / median / p95 nanoseconds per iteration over a fixed
//! number of samples. Sample statistics and unit formatting are shared
//! with the span profiler (`fleetio_obs::prof::{summarize_ns, format_ns}`)
//! so every timing number in the workspace renders identically, and each
//! benchmark's total wall time is recorded as a profiler span. Wall-clock
//! use is confined to this crate: simulator crates must take time from
//! `fleetio_des::SimTime` (enforced by `fleetio-audit`).

use std::time::Instant;

use fleetio_obs::prof::{format_ns, summarize_ns, NsSummary};

/// Per-sample measurement budget.
const SAMPLE_TARGET_NANOS: u128 = 50_000_000; // 50 ms
/// Samples per benchmark.
const SAMPLES: usize = 12;

/// Records the measured samples under a `bench.<name>` profiler span and
/// prints the shared one-line summary. Returns the median ns/iter.
fn report(name: &str, per_iter: &mut [f64], iters: u64, total: std::time::Duration) -> f64 {
    fleetio_obs::prof::record_span(&format!("bench.{name}"), total);
    let NsSummary {
        mean, median, p95, ..
    } = summarize_ns(per_iter);
    println!(
        "{name:<40} {:>14} /iter   (mean {}, p95 {}, {iters} iters x {})",
        format_ns(median),
        format_ns(mean),
        format_ns(p95),
        per_iter.len(),
    );
    median
}

/// Times `f`, printing a one-line summary. Returns median ns/iter.
pub fn bench_function<F: FnMut()>(name: &str, mut f: F) -> f64 {
    // Warm up and calibrate the per-sample iteration count.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let spent = t0.elapsed().as_nanos();
        if spent >= SAMPLE_TARGET_NANOS / 4 || iters >= 1 << 24 {
            let per = (spent / u128::from(iters)).max(1);
            iters = ((SAMPLE_TARGET_NANOS / per) as u64).clamp(1, 1 << 24);
            break;
        }
        iters *= 8;
    }
    let run_start = Instant::now();
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    report(name, &mut per_iter, iters, run_start.elapsed())
}

/// Times `f` with a fresh `setup()` product per iteration (setup excluded
/// from the timing), printing a one-line summary. Returns median ns/iter.
pub fn bench_with_setup<S, T, F: FnMut(T)>(name: &str, mut setup: S, mut f: F) -> f64
where
    S: FnMut() -> T,
{
    let mut per_iter: Vec<f64> = Vec::with_capacity(SAMPLES * 4);
    let mut timed = std::time::Duration::ZERO;
    for _ in 0..SAMPLES * 4 {
        let input = setup();
        let t0 = Instant::now();
        f(input);
        let spent = t0.elapsed();
        timed += spent;
        per_iter.push(spent.as_nanos() as f64);
    }
    report(name, &mut per_iter, 1, timed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_time() {
        let mut acc = 0u64;
        let ns = bench_function("harness_self_test", || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert!(ns > 0.0);
    }

    #[test]
    fn bench_with_setup_excludes_setup() {
        let ns = bench_with_setup(
            "harness_setup_self_test",
            || 21u64,
            |x| {
                std::hint::black_box(x * 2);
            },
        );
        assert!(ns >= 0.0);
    }
}
