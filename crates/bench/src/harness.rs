//! A minimal wall-clock micro-benchmark harness on pure `std`.
//!
//! The workspace builds offline with no external crates, so the bench
//! targets time themselves with `std::time::Instant` instead of criterion.
//! Each benchmark auto-calibrates its iteration count to a target budget,
//! then reports mean / median / p95 nanoseconds per iteration over a fixed
//! number of samples. Wall-clock use is confined to this crate: simulator
//! crates must take time from `fleetio_des::SimTime` (enforced by
//! `fleetio-audit`).

use std::time::Instant;

/// Per-sample measurement budget.
const SAMPLE_TARGET_NANOS: u128 = 50_000_000; // 50 ms
/// Samples per benchmark.
const SAMPLES: usize = 12;

/// Times `f`, printing a one-line summary. Returns median ns/iter.
pub fn bench_function<F: FnMut()>(name: &str, mut f: F) -> f64 {
    // Warm up and calibrate the per-sample iteration count.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let spent = t0.elapsed().as_nanos();
        if spent >= SAMPLE_TARGET_NANOS / 4 || iters >= 1 << 24 {
            let per = (spent / u128::from(iters)).max(1);
            iters = ((SAMPLE_TARGET_NANOS / per) as u64).clamp(1, 1 << 24);
            break;
        }
        iters *= 8;
    }
    let mut per_iter: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let median = per_iter[per_iter.len() / 2];
    let p95 = per_iter[(per_iter.len() * 95 / 100).min(per_iter.len() - 1)];
    println!(
        "{name:<40} {:>14} /iter   (mean {}, p95 {}, {iters} iters x {SAMPLES})",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(p95),
    );
    median
}

/// Times `f` with a fresh `setup()` product per iteration (setup excluded
/// from the timing), printing a one-line summary. Returns median ns/iter.
pub fn bench_with_setup<S, T, F: FnMut(T)>(name: &str, mut setup: S, mut f: F) -> f64
where
    S: FnMut() -> T,
{
    let mut per_iter: Vec<f64> = Vec::with_capacity(SAMPLES * 4);
    for _ in 0..SAMPLES * 4 {
        let input = setup();
        let t0 = Instant::now();
        f(input);
        per_iter.push(t0.elapsed().as_nanos() as f64);
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let median = per_iter[per_iter.len() / 2];
    let p95 = per_iter[(per_iter.len() * 95 / 100).min(per_iter.len() - 1)];
    println!(
        "{name:<40} {:>14} /iter   (mean {}, p95 {}, {} iters)",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(p95),
        per_iter.len(),
    );
    median
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_positive_time() {
        let mut acc = 0u64;
        let ns = bench_function("harness_self_test", || {
            acc = acc.wrapping_add(std::hint::black_box(1));
        });
        assert!(ns > 0.0);
    }

    #[test]
    fn bench_with_setup_excludes_setup() {
        let ns = bench_with_setup(
            "harness_setup_self_test",
            || 21u64,
            |x| {
                std::hint::black_box(x * 2);
            },
        );
        assert!(ns >= 0.0);
    }
}
