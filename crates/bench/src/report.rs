//! Row-oriented result reporting (text tables + JSON).

/// One figure's regenerated rows.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Identifier, e.g. `"fig10"`.
    pub id: String,
    /// What the figure shows.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row label + one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Free-form notes (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        FigureReport {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, label: &str, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.to_string(), values));
    }

    /// Appends a note.
    pub fn note(&mut self, text: String) {
        self.notes.push(text);
    }

    /// Renders the report as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        out.push_str(&format!("{:label_w$}", ""));
        for c in &self.columns {
            out.push_str(&format!(" | {c:>12}"));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("{label:label_w$}"));
            for v in values {
                if v.abs() >= 1000.0 {
                    out.push_str(&format!(" | {v:>12.0}"));
                } else {
                    out.push_str(&format!(" | {v:>12.3}"));
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Renders the report as JSON (hand-rolled; the workspace builds with
    /// no external crates).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str("  \"columns\": [");
        push_joined(&mut out, self.columns.iter().map(|c| json_str(c)));
        out.push_str("],\n  \"rows\": [");
        for (i, (label, values)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"label\": {}, \"values\": [",
                json_str(label)
            ));
            push_joined(&mut out, values.iter().map(|v| json_num(*v)));
            out.push_str("]}");
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"notes\": [");
        push_joined(&mut out, self.notes.iter().map(|n| json_str(n)));
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes a string into a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an f64 as a JSON number (JSON has no NaN/Inf — map to null).
pub(crate) fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn push_joined(out: &mut String, items: impl Iterator<Item = String>) {
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_includes_everything() {
        let mut r = FigureReport::new("figX", "Test", &["a", "b"]);
        r.row("row1", vec![1.0, 2500.0]);
        r.note("hello".into());
        let t = r.to_text();
        assert!(t.contains("figX"));
        assert!(t.contains("row1"));
        assert!(t.contains("2500"));
        assert!(t.contains("note: hello"));
    }

    #[test]
    fn json_contains_fields_and_escapes() {
        let mut r = FigureReport::new("figY", "T \"quoted\"", &["c"]);
        r.row("r", vec![0.5]);
        r.row("nan", vec![f64::NAN]);
        let j = r.to_json();
        assert!(j.contains("\"id\": \"figY\""), "{j}");
        assert!(j.contains("\"title\": \"T \\\"quoted\\\"\""), "{j}");
        assert!(j.contains("\"label\": \"r\", \"values\": [0.5]"), "{j}");
        assert!(j.contains("\"values\": [null]"), "{j}");
        // Balanced braces/brackets as a cheap well-formedness check.
        for (open, close) in [('{', '}'), ('[', ']')] {
            let o = j.matches(open).count();
            let c = j.matches(close).count();
            assert_eq!(o, c, "unbalanced {open}{close} in {j}");
        }
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = FigureReport::new("z", "t", &["one"]);
        r.row("bad", vec![1.0, 2.0]);
    }
}
