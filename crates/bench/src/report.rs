//! Row-oriented result reporting (text tables + JSON).

use serde::Serialize;

/// One figure's regenerated rows.
#[derive(Debug, Clone, Serialize)]
pub struct FigureReport {
    /// Identifier, e.g. `"fig10"`.
    pub id: String,
    /// What the figure shows.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row label + one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Free-form notes (paper-vs-measured commentary).
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        FigureReport {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, label: &str, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.to_string(), values));
    }

    /// Appends a note.
    pub fn note(&mut self, text: String) {
        self.notes.push(text);
    }

    /// Renders the report as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        out.push_str(&format!("{:label_w$}", ""));
        for c in &self.columns {
            out.push_str(&format!(" | {c:>12}"));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("{label:label_w$}"));
            for v in values {
                if v.abs() >= 1000.0 {
                    out.push_str(&format!(" | {v:>12.0}"));
                } else {
                    out.push_str(&format!(" | {v:>12.3}"));
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Renders the report as JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_includes_everything() {
        let mut r = FigureReport::new("figX", "Test", &["a", "b"]);
        r.row("row1", vec![1.0, 2500.0]);
        r.note("hello".into());
        let t = r.to_text();
        assert!(t.contains("figX"));
        assert!(t.contains("row1"));
        assert!(t.contains("2500"));
        assert!(t.contains("note: hello"));
    }

    #[test]
    fn json_is_valid() {
        let mut r = FigureReport::new("figY", "T", &["c"]);
        r.row("r", vec![0.5]);
        let parsed: serde_json::Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(parsed["id"], "figY");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut r = FigureReport::new("z", "t", &["one"]);
        r.row("bad", vec![1.0, 2.0]);
    }
}
