//! Shared, lazily-computed experiment artifacts.

use std::collections::HashMap;

use fleetio::agent::{pretrain, PretrainedModel};
use fleetio::baselines::SsdKeeperPlanner;
use fleetio::driver::TenantSpec;
use fleetio::experiment::{
    calibrate_slo, hardware_layout, measure_device_peak, workload_feature_windows,
};
use fleetio::FleetIoConfig;
use fleetio_des::SimDuration;
use fleetio_workloads::{WindowFeatures, WorkloadKind};

use crate::scale::Scale;

/// Reward-function ablation variants (Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    /// Per-type α plus β = 0.6 mixing (the full system).
    Full,
    /// Unified α = 0.01 for every agent, β = 0.6.
    UnifiedGlobal,
    /// Per-type α but β = 1 (selfish agents).
    CustomizedLocal,
}

impl ModelVariant {
    /// Applies the variant to a base configuration.
    pub fn apply(self, base: &FleetIoConfig) -> FleetIoConfig {
        let mut cfg = base.clone();
        match self {
            ModelVariant::Full => {}
            ModelVariant::UnifiedGlobal => {
                cfg.alpha_lc1 = cfg.unified_alpha;
                cfg.alpha_lc2 = cfg.unified_alpha;
                cfg.alpha_bi = cfg.unified_alpha;
            }
            ModelVariant::CustomizedLocal => {
                cfg.beta = 1.0;
            }
        }
        cfg
    }
}

/// Caches everything expensive that multiple figures share.
pub struct SharedContext {
    /// The base configuration (Table 3 defaults).
    pub cfg: FleetIoConfig,
    /// The run scale.
    pub scale: Scale,
    /// Root seed.
    pub seed: u64,
    peak: Option<f64>,
    slos: HashMap<(WorkloadKind, usize), SimDuration>,
    features: HashMap<WorkloadKind, WindowFeatures>,
    models: HashMap<ModelVariant, PretrainedModel>,
    planner: Option<SsdKeeperPlanner>,
}

impl SharedContext {
    /// Creates an empty context over the Table 3 default configuration.
    pub fn new(scale: Scale, seed: u64) -> Self {
        SharedContext {
            cfg: FleetIoConfig::default(),
            scale,
            seed,
            peak: None,
            slos: HashMap::new(),
            features: HashMap::new(),
            models: HashMap::new(),
            planner: None,
        }
    }

    /// The calibrated device peak, bytes/second (measured once).
    pub fn device_peak(&mut self) -> f64 {
        if self.peak.is_none() {
            self.peak = Some(measure_device_peak(&self.cfg, self.seed ^ 0x9e37));
        }
        self.peak.expect("just set")
    }

    /// The calibrated SLO (P99 alone under hardware isolation) for `kind`
    /// on `channels` channels.
    pub fn slo(&mut self, kind: WorkloadKind, channels: usize) -> SimDuration {
        if let Some(s) = self.slos.get(&(kind, channels)) {
            return *s;
        }
        let s = calibrate_slo(
            &self.cfg,
            kind,
            channels,
            self.scale.calibration_windows(),
            self.seed ^ 0x510,
        );
        self.slos.insert((kind, channels), s);
        s
    }

    /// Mean solo-run I/O features of `kind` (for SSDKeeper planning).
    pub fn features(&mut self, kind: WorkloadKind) -> WindowFeatures {
        if let Some(f) = self.features.get(&kind) {
            return *f;
        }
        let (windows, reqs) = self.scale.clustering();
        let per_window =
            workload_feature_windows(&self.cfg, kind, 8, windows, reqs, self.seed ^ 0xFEA7);
        let n = per_window.len().max(1) as f64;
        let sum = per_window.iter().fold([0.0f64; 4], |acc, f| {
            let v = f.to_vec();
            [acc[0] + v[0], acc[1] + v[1], acc[2] + v[2], acc[3] + v[3]]
        });
        let mean = WindowFeatures {
            read_bw: sum[0] / n,
            write_bw: sum[1] / n,
            lpa_entropy: sum[2] / n,
            avg_io_size: sum[3] / n,
        };
        self.features.insert(kind, mean);
        mean
    }

    /// The pre-training scenarios: pairs of §3.8's pre-training workloads
    /// on the default hardware-isolated split, with calibrated SLOs on the
    /// latency-sensitive tenants.
    pub fn pretrain_scenarios(&mut self) -> Vec<Vec<TenantSpec>> {
        use WorkloadKind::*;
        // Two-tenant pairs plus wider collocations, so the policy sees the
        // observation scales of 8-, 4- and 2-channel vSSDs (deployment
        // mixes go up to 8 tenants, Table 5).
        let combos: Vec<Vec<WorkloadKind>> = vec![
            vec![Tpce, BatchAnalytics],
            vec![LiveMaps, BatchAnalytics],
            vec![SearchEngine, BatchAnalytics],
            vec![Tpce, SearchEngine, BatchAnalytics, BatchAnalytics],
            vec![
                Tpce,
                Tpce,
                LiveMaps,
                SearchEngine,
                BatchAnalytics,
                BatchAnalytics,
                BatchAnalytics,
                BatchAnalytics,
            ],
        ];
        let total = usize::from(self.cfg.engine.flash.channels);
        combos
            .into_iter()
            .enumerate()
            .map(|(i, kinds)| {
                let share = total / kinds.len();
                let slos: Vec<Option<SimDuration>> = kinds
                    .iter()
                    .map(|k| {
                        (k.category() == fleetio_workloads::WorkloadCategory::LatencySensitive)
                            .then(|| self.slo(*k, share))
                    })
                    .collect();
                hardware_layout(
                    &self.cfg,
                    &kinds,
                    &slos,
                    self.seed.wrapping_add(100 + i as u64),
                )
            })
            .collect()
    }

    /// The pre-trained model for a reward variant (trained once, cached).
    pub fn model(&mut self, variant: ModelVariant) -> PretrainedModel {
        if let Some(m) = self.models.get(&variant) {
            return m.clone();
        }
        let scenarios = self.pretrain_scenarios();
        let cfg = variant.apply(&self.cfg);
        let opts = self.scale.pretrain_options();
        let model = pretrain(&cfg, &scenarios, 0.5, opts, self.seed ^ 0xF1EE);
        self.models.insert(variant, model.clone());
        model
    }

    /// The trained SSDKeeper channel-demand planner (trained once).
    pub fn ssdkeeper(&mut self) -> SsdKeeperPlanner {
        if let Some(p) = &self.planner {
            return p.clone();
        }
        let max = usize::from(self.cfg.engine.flash.channels);
        let candidates = [2usize, 4, 8, 12];
        let windows = self.scale.calibration_windows();
        let mut profiles = Vec::new();
        for kind in WorkloadKind::ALL {
            let demand = fleetio::experiment::profile_channel_demand(
                &self.cfg,
                kind,
                &candidates,
                windows.min(4),
                self.seed ^ 0x5D,
            );
            profiles.push((self.features(kind), demand));
        }
        let planner = SsdKeeperPlanner::train(&profiles, max, self.seed ^ 0x5D4);
        self.planner = Some(planner.clone());
        planner
    }
}
