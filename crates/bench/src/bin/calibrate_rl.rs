//! Calibration: does a briefly pre-trained FleetIO policy land between
//! hardware and software isolation (Figure 10's trade-off)?

use fleetio::agent::{pretrain, PretrainOptions};
use fleetio::baselines::{FleetIoPolicy, StaticPolicy};
use fleetio::experiment::*;
use fleetio::{FleetIoConfig, TenantSpec};
use fleetio_obs::prof;
use fleetio_workloads::WorkloadKind;

fn main() {
    prof::enable();
    let cfg = FleetIoConfig::default();
    let opts = ExperimentOptions {
        cfg: cfg.clone(),
        measure_windows: 10,
        ramp_windows: 2,
        warm_fraction: 0.5,
        seed: 42,
    };
    let peak = measure_device_peak(&cfg, 1);
    let lc = WorkloadKind::VdiWeb;
    let bi = WorkloadKind::TeraSort;
    let slo = calibrate_slo(&cfg, lc, 8, 6, 7);
    println!("peak {:.0} MB/s, slo {slo}", peak / 1e6);

    // Pre-train on the PRETRAINING workloads (paper §3.8), evaluate on the
    // evaluation pair.
    let slo_pre = calibrate_slo(&cfg, WorkloadKind::Tpce, 8, 4, 8);
    let scen = |lc_k: WorkloadKind, bi_k: WorkloadKind, s: u64| -> Vec<TenantSpec> {
        let mut t = hardware_layout(&cfg, &[lc_k, bi_k], &[Some(slo_pre), None], s);
        t[0].config.slo = Some(slo_pre);
        t
    };
    let scenarios = vec![
        scen(WorkloadKind::Tpce, WorkloadKind::BatchAnalytics, 11),
        scen(WorkloadKind::LiveMaps, WorkloadKind::BatchAnalytics, 12),
        scen(WorkloadKind::SearchEngine, WorkloadKind::BatchAnalytics, 13),
        scen(WorkloadKind::Tpce, WorkloadKind::BatchAnalytics, 14),
    ];
    let popts = PretrainOptions {
        iterations: std::env::args()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(20),
        windows_per_rollout: 16,
        warmup_iterations: 2,
        parallel: true,
        lr_override: Some(3e-4),
        bc_rounds: 6,
        bc_epsilon: 0.15,
        progress: Some(|it, r| {
            if it % 5 == 0 {
                eprintln!("  iter {it}: mean reward {r:.3}");
            }
        }),
    };
    let model = prof::time("calibrate_rl.pretrain", || {
        pretrain(&cfg, &scenarios, 0.5, popts, 99)
    });

    for mode in ["hw", "fleetio", "sw"] {
        let _run = prof::span(&format!("calibrate_rl.run.{mode}"));
        let tenants = if mode == "sw" {
            software_layout(&opts.cfg, &[lc, bi], &[Some(slo), None], opts.seed)
        } else {
            hardware_layout(&opts.cfg, &[lc, bi], &[Some(slo), None], opts.seed)
        };
        let mut m = match mode {
            "fleetio" => {
                let mut pol = FleetIoPolicy::new(cfg.clone(), &model, 2);
                run_collocation(&mut pol, tenants, &opts, peak, None)
            }
            "hw" => run_collocation(&mut StaticPolicy::hardware(), tenants, &opts, peak, None),
            _ => run_collocation(&mut StaticPolicy::software(), tenants, &opts, peak, None),
        };
        m.policy = mode.to_string();
        println!(
            "{mode:8}: util {:5.1}% | bi bw {:6.1} MB/s | lc p99 {} vio {:.2}%",
            m.avg_utilization * 100.0,
            m.bi_bandwidth().unwrap() / 1e6,
            m.lc_p99().unwrap(),
            m.tenants[0].slo_violation_rate * 100.0,
        );
    }
    println!("\ntiming:\n{}", prof::take_report().to_text());
}
