//! Mechanism check: a hand-scripted optimal policy. If this doesn't beat
//! hardware isolation, harvesting itself is broken (not the learner).

use fleetio::baselines::{StaticPolicy, WindowPolicy};
use fleetio::driver::Colocation;
use fleetio::experiment::*;
use fleetio::FleetIoConfig;
use fleetio_des::window::WindowSummary;
use fleetio_vssd::admission::HarvestAction;
use fleetio_vssd::request::Priority;
use fleetio_vssd::vssd::VssdId;
use fleetio_workloads::WorkloadKind;

const OFFER: f64 = 4.0;

#[derive(Debug)]
struct Oracle {
    last: Vec<u64>,
}

impl WindowPolicy for Oracle {
    fn name(&self) -> &'static str {
        "oracle"
    }
    fn on_window(&mut self, coloc: &mut Colocation, s: &[(VssdId, WindowSummary)]) {
        let snap0 = coloc.engine().snapshot(VssdId(0));
        let snap1 = coloc.engine().snapshot(VssdId(1));
        if false {
            eprintln!(
                "  w: lc bw {:5.1} p99 {} | bi bw {:6.1} | lc offers {} | bi holds {} | gc_runs {}",
                s[0].1.avg_bandwidth / 1e6,
                s[0].1.p99_latency,
                s[1].1.avg_bandwidth / 1e6,
                snap0.harvestable_channels,
                snap1.harvested_channels,
                coloc.engine().device().stats().gc_runs,
            );
        }
        let moved: Vec<u64> = (0..16)
            .map(|c| {
                coloc
                    .engine()
                    .device()
                    .channel(fleetio_flash::addr::ChannelId(c))
                    .bytes_moved()
            })
            .collect();
        if std::env::var_os("ORACLE_CH_DELTA").is_some() && self.last.len() == 16 {
            let delta: Vec<u64> = moved
                .iter()
                .zip(&self.last)
                .map(|(a, b)| (a - b) / 1_000_000)
                .collect();
            eprintln!("    ch MB: lc{:?} bi{:?}", &delta[..8], &delta[8..]);
        }
        self.last = moved;
        let ch_bw = coloc.engine().channel_peak_bytes_per_sec();
        let e = coloc.engine_mut();
        // Tenant 0 = LC: offer 4 channels, high priority.
        e.set_priority(VssdId(0), Priority::High);
        e.submit_action(HarvestAction::MakeHarvestable {
            vssd: VssdId(0),
            bytes_per_sec: OFFER * ch_bw,
        });
        // Tenant 1 = BI: harvest 4 channels, low priority for its bulk.
        e.set_priority(VssdId(1), Priority::Low);
        e.submit_action(HarvestAction::Harvest {
            vssd: VssdId(1),
            bytes_per_sec: OFFER * ch_bw,
        });
    }
}

fn main() {
    let cfg = FleetIoConfig::default();
    let opts = ExperimentOptions {
        cfg: cfg.clone(),
        measure_windows: 30,
        ramp_windows: 2,
        warm_fraction: 0.5,
        seed: 42,
    };
    let peak = measure_device_peak(&cfg, 1);
    let lc = WorkloadKind::VdiWeb;
    let bi = WorkloadKind::TeraSort;
    let slo = calibrate_slo(&cfg, lc, 8, 6, 7);
    println!("peak {:.0} MB/s, slo {slo}", peak / 1e6);
    for mode in ["hw", "oracle", "sw"] {
        let tenants = if mode == "sw" {
            software_layout(&opts.cfg, &[lc, bi], &[Some(slo), None], opts.seed)
        } else {
            hardware_layout(&opts.cfg, &[lc, bi], &[Some(slo), None], opts.seed)
        };
        let m = match mode {
            "oracle" => run_collocation(&mut Oracle { last: vec![] }, tenants, &opts, peak, None),
            "hw" => run_collocation(&mut StaticPolicy::hardware(), tenants, &opts, peak, None),
            _ => run_collocation(&mut StaticPolicy::software(), tenants, &opts, peak, None),
        };
        println!(
            "{mode:8}: util {:5.1}% | bi bw {:6.1} MB/s | lc p99 {} vio {:.2}%",
            m.avg_utilization * 100.0,
            m.bi_bandwidth().unwrap() / 1e6,
            m.lc_p99().unwrap(),
            m.tenants[0].slo_violation_rate * 100.0,
        );
    }
}
