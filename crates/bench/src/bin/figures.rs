//! Regenerates the FleetIO paper's tables and figures.
//!
//! ```text
//! figures <target> [--full|--tiny] [--json]
//!   target: fig2 fig3 fig6 fig10 fig11 fig12 fig13 fig14 fig15 fig16
//!           fig17 overheads tables all
//! ```
//!
//! Default scale is `quick` (minutes, preserves orderings/crossovers);
//! `--full` runs paper-length spans and a larger training budget.

use fleetio_bench::figures;
use fleetio_bench::report::FigureReport;
use fleetio_bench::{Scale, SharedContext};
use fleetio_obs::prof;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let target = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let scale = Scale::from_args(&args);
    let json = args.iter().any(|a| a == "--json");
    let mut ctx = SharedContext::new(scale, 0xF1EE710);

    prof::enable();
    let run = prof::span(&format!("figures.{target}"));
    let reports: Vec<FigureReport> = match target.as_str() {
        "fig2" | "fig3" => figures::fig2_3(&mut ctx),
        "fig6" => vec![figures::fig6(&mut ctx)],
        "fig10" | "fig11" | "fig12" | "fig13" => figures::fig10_13(&mut ctx),
        "fig14" => figures::fig14(&mut ctx),
        "fig15" => figures::fig15(&mut ctx),
        "fig16" => vec![figures::fig16(&mut ctx)],
        "fig17" => vec![figures::fig17(&mut ctx)],
        "overheads" => vec![figures::overheads(&mut ctx)],
        "tables" => vec![figures::tables(&mut ctx)],
        "all" => {
            let mut all = Vec::new();
            all.push(figures::tables(&mut ctx));
            all.extend(figures::fig2_3(&mut ctx));
            all.push(figures::fig6(&mut ctx));
            all.extend(figures::fig10_13(&mut ctx));
            all.extend(figures::fig14(&mut ctx));
            all.extend(figures::fig15(&mut ctx));
            all.push(figures::fig16(&mut ctx));
            all.push(figures::fig17(&mut ctx));
            all.push(figures::overheads(&mut ctx));
            all
        }
        other => {
            eprintln!("unknown target '{other}'");
            eprintln!(
                "targets: fig2 fig3 fig6 fig10..fig13 fig14 fig15 fig16 fig17 overheads tables all"
            );
            std::process::exit(2);
        }
    };
    drop(run);
    for r in &reports {
        if json {
            println!("{}", r.to_json());
        } else {
            println!("{}", r.to_text());
        }
    }
    let timing = prof::take_report();
    let run_key = format!("figures.{target}");
    let total = timing
        .find(&[run_key.as_str()])
        .map(|s| prof::format_ns(s.stats.total_ns as f64))
        .unwrap_or_else(|| "?".to_string());
    eprintln!(
        "[{} report(s) at {:?} scale in {total}]\n{}",
        reports.len(),
        scale,
        timing.to_text()
    );
}
