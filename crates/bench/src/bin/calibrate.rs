//! Calibration scratchpad: HW vs SW isolation shapes (Figures 2/3).

use fleetio::baselines::StaticPolicy;
use fleetio::experiment::*;
use fleetio::FleetIoConfig;
use fleetio_obs::prof;
use fleetio_workloads::WorkloadKind;

fn main() {
    prof::enable();
    let cfg = FleetIoConfig::default();
    let opts = ExperimentOptions {
        cfg: cfg.clone(),
        measure_windows: 10,
        ramp_windows: 2,
        warm_fraction: 0.5,
        seed: 42,
    };
    let peak = prof::time("calibrate.device_peak", || measure_device_peak(&cfg, 1));
    println!(
        "device peak: {:.1} MB/s  (theory {:.1})",
        peak / 1e6,
        cfg.engine.flash.device_peak_bytes_per_sec() / 1e6,
    );

    for (lc, bi) in [
        (WorkloadKind::VdiWeb, WorkloadKind::TeraSort),
        (WorkloadKind::Ycsb, WorkloadKind::PageRank),
    ] {
        let slo = prof::time("calibrate.slo", || calibrate_slo(&cfg, lc, 8, 6, 7));
        println!("\n== {lc} + {bi} ==  slo(P99@8ch)={slo}");
        for mode in ["hw", "sw"] {
            let _run = prof::span(&format!("calibrate.run.{mode}"));
            let tenants = if mode == "hw" {
                hardware_layout(&opts.cfg, &[lc, bi], &[Some(slo), None], opts.seed)
            } else {
                software_layout(&opts.cfg, &[lc, bi], &[Some(slo), None], opts.seed)
            };
            let mut pol = if mode == "hw" {
                StaticPolicy::hardware()
            } else {
                StaticPolicy::software()
            };
            let m = run_collocation(&mut pol, tenants, &opts, peak, None);
            println!(
                "{mode}: util {:.1}% (p95 {:.1}%) | {} bw {:.1} MB/s | {} p99 {} p95 {} vio {:.2}%",
                m.avg_utilization * 100.0,
                m.p95_utilization * 100.0,
                bi,
                m.bi_bandwidth().unwrap() / 1e6,
                lc,
                m.lc_p99().unwrap(),
                m.tenants[0].p95,
                m.tenants[0].slo_violation_rate * 100.0,
            );
        }
    }
    println!("\ntiming:\n{}", prof::take_report().to_text());
}
