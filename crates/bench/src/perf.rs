//! Continuous perf-regression baseline: fixed-scale throughput scenarios,
//! a schema-versioned `BENCH_fleetio.json` report, and a thresholded
//! comparator for CI gating.
//!
//! [`run_perf`] measures five scenarios — a two-tenant colocation run, a
//! parallel rollout collection, a PPO update microbench, an event-queue
//! microbench, and a run-store ingest microbench — in two passes: a **timing pass** with the profiler disabled (so the throughput
//! numbers carry no instrumentation overhead) and a **profiling pass**
//! with `obs::prof` enabled that yields the span tree embedded in the
//! report and the folded stacks for flamegraphs. [`compare`] diffs two
//! reports metric by metric: every metric is a higher-is-better rate, a
//! regression past [`WARN_THRESHOLD`] warns and past [`FAIL_THRESHOLD`]
//! fails (nonzero CI exit).

use std::collections::BTreeMap;
use std::time::Instant;

use fleetio::agent::ppo_config;
use fleetio::baselines::StaticPolicy;
use fleetio::experiment::{hardware_layout, run_collocation, ExperimentOptions};
use fleetio::{Colocation, FleetIoConfig, FleetIoEnv};
use fleetio_des::rng::{Rng, SmallRng};
use fleetio_flash::config::FlashConfig;
use fleetio_obs::prof;
use fleetio_obs::prof::ProfReport;
use fleetio_rl::parallel::collect_parallel_envs;
use fleetio_rl::{ObsNormalizer, PpoPolicy, PpoTrainer, RolloutBuffer, Transition};
use fleetio_workloads::WorkloadKind;

use crate::report::{json_num, json_str};

/// Report format version; bump on any field change.
pub const SCHEMA: &str = "fleetio-bench-perf/1";

/// Regression fraction past which a metric warns (CI stays green).
pub const WARN_THRESHOLD: f64 = 0.10;

/// Regression fraction past which a metric fails (nonzero CI exit).
pub const FAIL_THRESHOLD: f64 = 0.25;

/// Spans kept in the report (top by self time).
const TOP_SPANS: usize = 12;

/// Scale knobs for the perf scenarios. All metrics are rates, so the
/// absolute scale only needs to be large enough for stable numbers —
/// comparisons must use reports produced at the *same* scale.
#[derive(Debug, Clone, Copy)]
pub struct PerfOptions {
    /// Measured colocation windows (after the ramp).
    pub measure_windows: usize,
    /// Unmeasured ramp-up windows.
    pub ramp_windows: usize,
    /// Parallel rollout worker environments.
    pub rollout_envs: usize,
    /// Environment steps collected per rollout worker.
    pub rollout_steps: usize,
    /// Synthetic transitions per PPO update.
    pub ppo_transitions: usize,
    /// PPO updates timed.
    pub ppo_updates: usize,
    /// Push/pop pairs timed by the event-queue microbench.
    pub queue_ops: usize,
    /// Events streamed through the run-store ingest microbench.
    pub store_events: usize,
    /// Fleet shards (one vSSD engine each).
    pub fleet_shards: u32,
    /// vSSD slots per fleet shard.
    pub fleet_slots: u32,
    /// Tenants placed across the fleet.
    pub fleet_tenants: u32,
    /// Fleet decision windows run.
    pub fleet_windows: u32,
    /// Worker threads advancing fleet shards.
    pub fleet_workers: usize,
    /// Root random seed.
    pub seed: u64,
}

impl PerfOptions {
    /// The committed-baseline / CI scale: a couple of seconds per scenario.
    pub fn ci() -> Self {
        PerfOptions {
            measure_windows: 6,
            ramp_windows: 1,
            rollout_envs: 4,
            rollout_steps: 16,
            ppo_transitions: 512,
            ppo_updates: 6,
            queue_ops: 2_000_000,
            store_events: 400_000,
            fleet_shards: 16,
            fleet_slots: 4,
            fleet_tenants: 56,
            fleet_windows: 6,
            fleet_workers: 4,
            seed: 42,
        }
    }

    /// A minimal scale for tests: exercises every code path in well under
    /// a second. Not comparable with `ci()` reports.
    pub fn smoke() -> Self {
        PerfOptions {
            measure_windows: 2,
            ramp_windows: 1,
            rollout_envs: 2,
            rollout_steps: 4,
            ppo_transitions: 64,
            ppo_updates: 1,
            queue_ops: 20_000,
            store_events: 5_000,
            fleet_shards: 2,
            fleet_slots: 2,
            fleet_tenants: 3,
            fleet_windows: 2,
            fleet_workers: 2,
            seed: 42,
        }
    }
}

/// One aggregated span kept in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Root-to-span path joined with `;` (the folded-stacks key).
    pub path: String,
    /// Completed calls.
    pub calls: u64,
    /// Total wall time, nanoseconds (inclusive of children).
    pub total_ns: u64,
    /// Wall time not attributed to any child span.
    pub self_ns: u64,
}

/// A schema-versioned perf report: throughput metrics plus the hottest
/// spans from the profiled pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// Format version ([`SCHEMA`]).
    pub schema: String,
    /// Metric name → rate (all higher-is-better, units/second).
    pub metrics: BTreeMap<String, f64>,
    /// Top spans by self time from the profiled pass.
    pub spans: Vec<SpanSummary>,
}

impl PerfReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_str(&self.schema)));
        out.push_str("  \"metrics\": {");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_str(name), json_num(*value)));
        }
        if !self.metrics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"calls\": {}, \"total_ns\": {}, \"self_ns\": {}}}",
                json_str(&s.path),
                s.calls,
                s.total_ns,
                s.self_ns
            ));
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a report back from JSON, validating the schema version.
    pub fn from_json(input: &str) -> Result<PerfReport, String> {
        let value = fleetio_obs::json::parse(input)?;
        let obj = value.as_object().ok_or("report must be a JSON object")?;
        let schema = obj
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or("missing \"schema\" field")?;
        if schema != SCHEMA {
            return Err(format!(
                "schema mismatch: file has {schema:?}, this binary expects {SCHEMA:?}"
            ));
        }
        let mut metrics = BTreeMap::new();
        let metric_obj = obj
            .get("metrics")
            .and_then(|v| v.as_object())
            .ok_or("missing \"metrics\" object")?;
        for (name, v) in metric_obj {
            let rate = v
                .as_f64()
                .ok_or_else(|| format!("metric {name:?} is not a number"))?;
            metrics.insert(name.clone(), rate);
        }
        let mut spans = Vec::new();
        for (i, s) in obj
            .get("spans")
            .and_then(|v| v.as_array())
            .ok_or("missing \"spans\" array")?
            .iter()
            .enumerate()
        {
            let span = s
                .as_object()
                .ok_or_else(|| format!("span {i} is not an object"))?;
            let field = |key: &str| {
                span.get(key)
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("span {i} missing integer {key:?}"))
            };
            spans.push(SpanSummary {
                path: span
                    .get("path")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| format!("span {i} missing \"path\""))?
                    .to_string(),
                calls: field("calls")?,
                total_ns: field("total_ns")?,
                self_ns: field("self_ns")?,
            });
        }
        Ok(PerfReport {
            schema: schema.to_string(),
            metrics,
            spans,
        })
    }
}

/// How far one metric moved between two reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Within the warn threshold (or improved).
    Ok,
    /// Regression past [`WARN_THRESHOLD`]; CI stays green.
    Warn,
    /// Regression past [`FAIL_THRESHOLD`] (or the metric vanished);
    /// CI exits nonzero.
    Fail,
}

/// One metric's movement between the old and new report.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Baseline rate.
    pub old: f64,
    /// New rate.
    pub new: f64,
    /// Fractional regression `(old - new) / old`; negative = improvement.
    pub regression: f64,
    /// Threshold classification.
    pub severity: Severity,
}

/// The outcome of [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompareResult {
    /// Per-metric deltas for metrics present in both reports.
    pub deltas: Vec<MetricDelta>,
    /// Metrics in the baseline but missing from the new report (a fail:
    /// a silently dropped metric must not pass the gate).
    pub missing: Vec<String>,
    /// Metrics only in the new report. A fail in strict mode (a metric
    /// nobody baselined must not silently skip the gate); informational
    /// under `allow_new` (how new metrics are introduced intentionally).
    pub added: Vec<String>,
    /// Whether `added` metrics are tolerated (the `--allow-new` mode).
    pub allow_new: bool,
}

impl CompareResult {
    /// Whether any metric breached the fail threshold, went missing, or
    /// (in strict mode) appeared without a baseline.
    pub fn failed(&self) -> bool {
        !self.missing.is_empty()
            || (!self.allow_new && !self.added.is_empty())
            || self.deltas.iter().any(|d| d.severity == Severity::Fail)
    }

    /// Whether any metric breached the warn threshold (without failing).
    pub fn warned(&self) -> bool {
        self.deltas.iter().any(|d| d.severity == Severity::Warn)
    }

    /// Renders the comparison as an aligned table plus a verdict line.
    pub fn render_text(&self, warn: f64, fail: f64) -> String {
        let mut out = String::new();
        let name_w = self
            .deltas
            .iter()
            .map(|d| d.name.len())
            .chain(std::iter::once(6))
            .max()
            .unwrap_or(6);
        out.push_str(&format!(
            "{:<name_w$} {:>14} {:>14} {:>9}  status\n",
            "metric", "old", "new", "change"
        ));
        for d in &self.deltas {
            let status = match d.severity {
                Severity::Ok => "ok",
                Severity::Warn => "WARN",
                Severity::Fail => "FAIL",
            };
            out.push_str(&format!(
                "{:<name_w$} {:>14.1} {:>14.1} {:>+8.1}%  {status}\n",
                d.name,
                d.old,
                d.new,
                -d.regression * 100.0
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("{name:<name_w$} missing from new report  FAIL\n"));
        }
        for name in &self.added {
            if self.allow_new {
                out.push_str(&format!("{name:<name_w$} new metric (no baseline)\n"));
            } else {
                out.push_str(&format!(
                    "{name:<name_w$} new metric without a baseline  FAIL (re-run with --allow-new to accept)\n"
                ));
            }
        }
        if self.failed() {
            out.push_str(&format!(
                "FAIL: regression beyond {:.0}% (or missing/unbaselined metric)\n",
                fail * 100.0
            ));
        } else if self.warned() {
            out.push_str(&format!(
                "WARN: regression beyond {:.0}% (gate stays green below {:.0}%)\n",
                warn * 100.0,
                fail * 100.0
            ));
        } else {
            out.push_str("OK: all metrics within thresholds\n");
        }
        out
    }
}

/// Compares two reports. Metrics are higher-is-better rates, except
/// names starting with `allocs_` (heap traffic), which are
/// lower-is-better and compared inverted. The regression fraction is
/// `(old - new) / old` (or its negation for inverted metrics). Metrics
/// present in the baseline but absent from the new report fail outright;
/// metrics present only in the new report fail unless `allow_new` is set.
pub fn compare(
    old: &PerfReport,
    new: &PerfReport,
    warn: f64,
    fail: f64,
    allow_new: bool,
) -> CompareResult {
    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for (name, &old_rate) in &old.metrics {
        match new.metrics.get(name) {
            None => missing.push(name.clone()),
            Some(&new_rate) => {
                // `allocs_*` counts heap traffic: more is worse.
                let lower_is_better = name.starts_with("allocs_");
                let regression = if old_rate > 0.0 {
                    let drop = (old_rate - new_rate) / old_rate;
                    if lower_is_better {
                        -drop
                    } else {
                        drop
                    }
                } else {
                    0.0
                };
                let severity = if regression > fail {
                    Severity::Fail
                } else if regression > warn {
                    Severity::Warn
                } else {
                    Severity::Ok
                };
                deltas.push(MetricDelta {
                    name: name.clone(),
                    old: old_rate,
                    new: new_rate,
                    regression,
                    severity,
                });
            }
        }
    }
    let added = new
        .metrics
        .keys()
        .filter(|k| !old.metrics.contains_key(*k))
        .cloned()
        .collect();
    CompareResult {
        deltas,
        missing,
        added,
        allow_new,
    }
}

/// The perf scenarios' shared configuration: the RL training device (big
/// enough for closed-loop tenants, small enough for CI).
fn perf_config() -> FleetIoConfig {
    let mut cfg = FleetIoConfig::default();
    cfg.engine.flash = FlashConfig::training_test();
    cfg
}

/// Colocation scenario: hardware-isolated VDI + TeraSort under a static
/// policy. Fills `sim_events_per_sec`, `nand_ops_per_sec` and
/// `windows_per_sec` from the engine's lifetime counters over the
/// measured wall time.
fn colocation_scenario(opts: &PerfOptions, metrics: &mut BTreeMap<String, f64>) {
    let _prof = prof::span("perf.colocation");
    let cfg = perf_config();
    let run_opts = ExperimentOptions {
        cfg: cfg.clone(),
        measure_windows: opts.measure_windows,
        ramp_windows: opts.ramp_windows,
        warm_fraction: 0.3,
        seed: opts.seed,
    };
    let tenants = hardware_layout(
        &cfg,
        &[WorkloadKind::VdiWeb, WorkloadKind::TeraSort],
        &[None, None],
        opts.seed,
    );
    // The theoretical peak suffices: utilization numbers are not a perf
    // metric, and skipping calibration keeps the scenario cheap.
    let peak = cfg.engine.flash.device_peak_bytes_per_sec();
    let mut events = 0u64;
    let mut nand_ops = 0u64;
    let mut hook = |_w: usize, c: &mut Colocation| {
        events = c.engine().events_processed();
        nand_ops = c.engine().device().stats().nand_ops;
    };
    #[cfg(feature = "prof-alloc")]
    let allocs0 = prof::alloc::counters().0;
    let t0 = Instant::now();
    let _ = run_collocation(
        &mut StaticPolicy::hardware(),
        tenants,
        &run_opts,
        peak,
        Some(&mut hook),
    );
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    let windows = (opts.measure_windows + opts.ramp_windows) as f64;
    metrics.insert("sim_events_per_sec".to_string(), events as f64 / secs);
    metrics.insert("nand_ops_per_sec".to_string(), nand_ops as f64 / secs);
    metrics.insert("windows_per_sec".to_string(), windows / secs);
    // Heap traffic per simulated event — only meaningful (and only
    // counted) when the counting global allocator is installed, i.e. the
    // binary was built with `--features prof-alloc`. Wall-clock-free, so
    // it is the one metric immune to machine noise.
    #[cfg(feature = "prof-alloc")]
    {
        let allocs = prof::alloc::counters().0.saturating_sub(allocs0);
        if events > 0 {
            metrics.insert(
                "allocs_per_sim_event".to_string(),
                allocs as f64 / events as f64,
            );
        }
    }
}

/// Parallel rollout scenario: frozen-policy collection from persistent
/// FleetIO environments on scoped worker threads. Fills
/// `rollout_steps_per_sec` (agent-steps; environment setup and warm-up
/// are excluded from the timed region).
fn rollout_scenario(opts: &PerfOptions, metrics: &mut BTreeMap<String, f64>) {
    let _prof = prof::span("perf.rollout");
    let cfg = perf_config();
    // The pre-training pair (§3.8): long persistent rollouts must not
    // outgrow the small training device, so avoid write-flood workloads.
    let tenants = hardware_layout(
        &cfg,
        &[WorkloadKind::Tpce, WorkloadKind::BatchAnalytics],
        &[None, None],
        opts.seed,
    );
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let policy = PpoPolicy::new(
        cfg.obs_dim(),
        &cfg.action_dims(),
        &cfg.hidden_layers,
        &mut rng,
    );
    let mut normalizer = ObsNormalizer::new(cfg.obs_dim(), 10.0);
    normalizer.freeze();
    let mut envs: Vec<FleetIoEnv> = (0..opts.rollout_envs)
        .map(|i| {
            let rewards = FleetIoEnv::default_rewards(&cfg, &tenants);
            FleetIoEnv::new(
                cfg.clone(),
                tenants.clone(),
                rewards,
                0.3,
                opts.rollout_steps.max(1),
                opts.seed.wrapping_add(i as u64),
            )
        })
        .collect();
    let gamma = ppo_config(&cfg).gamma;
    let t0 = Instant::now();
    let buf = collect_parallel_envs(
        &mut envs,
        &policy,
        &normalizer,
        opts.rollout_steps,
        gamma,
        opts.seed,
    );
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    metrics.insert("rollout_steps_per_sec".to_string(), buf.len() as f64 / secs);
}

/// Builds a deterministic synthetic rollout for the PPO microbench:
/// plausible observations/advantage inputs without paying for a simulator.
fn synthetic_buffer(n: usize, obs_dim: usize, action_dims: &[usize], seed: u64) -> RolloutBuffer {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut buf = RolloutBuffer::new();
    for i in 0..n {
        let obs: Vec<f32> = (0..obs_dim).map(|_| rng.gen_f32() * 2.0 - 1.0).collect();
        let action: Vec<usize> = action_dims
            .iter()
            .map(|&d| (rng.next_u64() % d as u64) as usize)
            .collect();
        buf.push(Transition {
            obs,
            action,
            logp: -1.5 + rng.gen_f64() * 0.5,
            reward: rng.gen_f64() * 2.0 - 1.0,
            value: rng.gen_f64(),
            done: (i + 1) % 32 == 0,
            advantage: 0.0,
            ret: 0.0,
        });
    }
    buf
}

/// PPO update microbench: repeated `PpoTrainer::update` over a cloned
/// synthetic rollout. Fills `ppo_updates_per_sec`.
fn ppo_scenario(opts: &PerfOptions, metrics: &mut BTreeMap<String, f64>) {
    let _prof = prof::span("perf.ppo");
    let cfg = perf_config();
    let obs_dim = cfg.obs_dim();
    let action_dims = cfg.action_dims();
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x9d07);
    let policy = PpoPolicy::new(obs_dim, &action_dims, &cfg.hidden_layers, &mut rng);
    let mut trainer = PpoTrainer::new(policy, obs_dim, ppo_config(&cfg), opts.seed);
    let buf = synthetic_buffer(opts.ppo_transitions, obs_dim, &action_dims, opts.seed);
    let t0 = Instant::now();
    for _ in 0..opts.ppo_updates {
        let _ = trainer.update(buf.clone());
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    metrics.insert(
        "ppo_updates_per_sec".to_string(),
        opts.ppo_updates as f64 / secs,
    );
}

fn run_scenarios(opts: &PerfOptions, metrics: &mut BTreeMap<String, f64>) {
    colocation_scenario(opts, metrics);
    fleet_scenario(opts, metrics);
    rollout_scenario(opts, metrics);
    ppo_scenario(opts, metrics);
    queue_scenario(opts, metrics);
    store_scenario(opts, metrics);
}

/// Fleet scenario: many independent vSSD engines advanced as shards on
/// a scoped worker pool, with batched policy inference and the
/// hotspot-consolidation control plane at every window merge. Fills
/// `fleet_windows_per_sec` and `fleet_events_per_sec` (fleet decision
/// windows and summed engine events over the measured wall time; the
/// build/warm-up phase is excluded).
fn fleet_scenario(opts: &PerfOptions, metrics: &mut BTreeMap<String, f64>) {
    use fleetio_fleet::{default_model, FleetRuntime, FleetSpec};
    let _prof = prof::span("perf.fleet");
    let mut spec = FleetSpec::sized(
        opts.seed,
        opts.fleet_shards,
        opts.fleet_slots,
        opts.fleet_tenants,
    );
    spec.windows = opts.fleet_windows;
    let mut rt = FleetRuntime::new(&spec, default_model(opts.seed), opts.fleet_workers);
    let t0 = Instant::now();
    let report = rt.run();
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    metrics.insert(
        "fleet_windows_per_sec".to_string(),
        f64::from(spec.windows) / secs,
    );
    metrics.insert(
        "fleet_events_per_sec".to_string(),
        report.events_processed as f64 / secs,
    );
}

/// Run-store ingest microbench: a representative event mix streamed
/// through a `StoreSink` (encode + CRC framing + fingerprint + segment
/// seals with fsync) into a throwaway directory. Fills
/// `store_ingest_events_per_sec` so recording overhead regressions are
/// caught even though the simulator never waits on the store.
fn store_scenario(opts: &PerfOptions, metrics: &mut BTreeMap<String, f64>) {
    use fleetio_des::SimTime;
    use fleetio_obs::{ObsEvent, ObsSink};
    use fleetio_store::StoreSink;

    let _prof = prof::span("perf.store");
    let dir = std::env::temp_dir().join(format!(
        "fleetio-bench-store-{}-{}",
        std::process::id(),
        opts.seed
    ));
    std::fs::remove_dir_all(&dir).ok();
    let mut sink = StoreSink::create(
        &dir,
        vec![0; 64],
        0x5707_e9e9,
        opts.seed,
        500_000_000,
        fleetio_store::DEFAULT_SEGMENT_BYTES,
    )
    .expect("create bench store");
    let t0 = Instant::now();
    for i in 0..opts.store_events as u64 {
        let at = SimTime::from_nanos(i * 1_000);
        // Deterministic mix weighted toward the hot event kinds.
        let ev = match i % 8 {
            0 => ObsEvent::RequestSubmit {
                at,
                req: i,
                vssd: (i % 4) as u32,
                read: i % 3 != 0,
                bytes: 4096,
            },
            1 => ObsEvent::RequestAdmit {
                at,
                req: i,
                vssd: (i % 4) as u32,
                pages: 1,
            },
            2 | 3 => ObsEvent::ChipIssue {
                at,
                req: i,
                vssd: (i % 4) as u32,
                channel: (i % 8) as u16,
                chip: (i % 4) as u16,
                read: i % 3 != 0,
            },
            4 | 5 => ObsEvent::NandOp {
                start: at,
                end: SimTime::from_nanos(i * 1_000 + 40_000),
                vssd: (i % 4) as u32,
                channel: (i % 8) as u16,
                chip: (i % 4) as u16,
                kind: fleetio_obs::NandKind::Read,
                gc: false,
                bytes: 4096,
            },
            _ => ObsEvent::RequestComplete {
                at,
                req: i,
                vssd: (i % 4) as u32,
                read: i % 3 != 0,
                bytes: 4096,
                arrival: SimTime::from_nanos(i.saturating_sub(50) * 1_000),
                service_start: at,
            },
        };
        sink.record(ev);
    }
    let manifest = sink.finish().expect("seal bench store");
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(manifest.total_events, opts.store_events as u64);
    metrics.insert(
        "store_ingest_events_per_sec".to_string(),
        opts.store_events as f64 / secs,
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Event-queue microbench: steady-state push/pop pairs over an
/// engine-like arrival-time distribution (most completions land within a
/// bucket width of `now`, a tail spans the ring, admission-tick-style
/// events overflow the horizon). Fills `queue_ops_per_sec` so a queue
/// regression is visible even when engine-level metrics move for other
/// reasons.
fn queue_scenario(opts: &PerfOptions, metrics: &mut BTreeMap<String, f64>) {
    use fleetio_des::{EventQueue, SimTime};
    let _prof = prof::span("perf.queue");
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x0005_eed9_0e0e);
    let mut q: EventQueue<u32> = EventQueue::new();
    let mut now = 0u64;
    // Steady-state population comparable to a busy engine.
    const PENDING: usize = 4_096;
    let deltas: Vec<u64> = (0..opts.queue_ops + PENDING)
        .map(|_| match rng.gen_range(0u64..100) {
            // Same-bucket completion (reads, bus grants).
            0..=59 => rng.gen_range(0u64..16_384),
            // Ring-resident (programs, erases, GC busy times).
            60..=94 => rng.gen_range(16_384u64..2_000_000),
            // Same-instant cascade.
            95..=97 => 0,
            // Beyond the ring horizon (pre-submitted arrivals).
            _ => rng.gen_range(70_000_000u64..200_000_000),
        })
        .collect();
    let mut di = deltas.iter();
    for _ in 0..PENDING {
        q.push(
            SimTime::from_nanos(now + di.next().expect("prefill delta")),
            0,
        );
    }
    let t0 = Instant::now();
    for _ in 0..opts.queue_ops {
        let ev = q.pop().expect("queue holds PENDING events");
        now = ev.at.as_nanos();
        q.push(
            SimTime::from_nanos(now + di.next().expect("steady delta")),
            0,
        );
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    // One op = one push + one pop.
    metrics.insert(
        "queue_ops_per_sec".to_string(),
        (opts.queue_ops * 2) as f64 / secs,
    );
}

/// Runs the perf suite: a timing pass with the profiler **disabled**
/// (throughput metrics carry no instrumentation cost), then a profiling
/// pass with it enabled. Returns the report plus the profiled pass's full
/// span tree (for folded-stacks / flamegraph output).
///
/// Toggles the process-global profiler; do not run concurrently with
/// other profiled work.
pub fn run_perf(opts: &PerfOptions) -> (PerfReport, ProfReport) {
    prof::disable();
    prof::reset();
    let mut metrics = BTreeMap::new();
    run_scenarios(opts, &mut metrics);

    prof::enable();
    let mut shadow = BTreeMap::new();
    run_scenarios(opts, &mut shadow);
    prof::disable();
    let tree = prof::take_report();

    let spans = tree
        .top_by_self(TOP_SPANS)
        .into_iter()
        .map(|s| SpanSummary {
            path: s.folded_key(),
            calls: s.stats.calls,
            total_ns: s.stats.total_ns,
            self_ns: s.stats.self_ns(),
        })
        .collect();
    (
        PerfReport {
            schema: SCHEMA.to_string(),
            metrics,
            spans,
        },
        tree,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PerfReport {
        let mut metrics = BTreeMap::new();
        metrics.insert("sim_events_per_sec".to_string(), 1_000_000.0);
        metrics.insert("ppo_updates_per_sec".to_string(), 12.5);
        PerfReport {
            schema: SCHEMA.to_string(),
            metrics,
            spans: vec![SpanSummary {
                path: "engine.run_until;engine.ev.arrival".to_string(),
                calls: 42,
                total_ns: 9_000,
                self_ns: 7_500,
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let report = sample_report();
        let decoded = PerfReport::from_json(&report.to_json()).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_shape() {
        assert!(PerfReport::from_json("[]").is_err());
        assert!(PerfReport::from_json(r#"{"metrics":{},"spans":[]}"#).is_err());
        let wrong = r#"{"schema":"fleetio-bench-perf/999","metrics":{},"spans":[]}"#;
        assert!(PerfReport::from_json(wrong).unwrap_err().contains("schema"));
    }

    #[test]
    fn compare_classifies_by_threshold() {
        let old = sample_report();
        let mut new = old.clone();
        // 5% down: ok. 20% down: warn. 30% down: fail.
        for (drop, expect) in [
            (0.05, Severity::Ok),
            (0.20, Severity::Warn),
            (0.30, Severity::Fail),
        ] {
            new.metrics
                .insert("sim_events_per_sec".to_string(), 1_000_000.0 * (1.0 - drop));
            let result = compare(&old, &new, WARN_THRESHOLD, FAIL_THRESHOLD, true);
            let delta = result
                .deltas
                .iter()
                .find(|d| d.name == "sim_events_per_sec")
                .unwrap();
            assert_eq!(delta.severity, expect, "drop {drop}");
            assert_eq!(result.failed(), expect == Severity::Fail);
        }
    }

    #[test]
    fn improvements_never_warn() {
        let old = sample_report();
        let mut new = old.clone();
        new.metrics.insert("sim_events_per_sec".to_string(), 2e6);
        let result = compare(&old, &new, WARN_THRESHOLD, FAIL_THRESHOLD, true);
        assert!(!result.failed() && !result.warned());
    }

    #[test]
    fn missing_metric_fails_and_added_is_informational() {
        let old = sample_report();
        let mut new = old.clone();
        new.metrics.remove("ppo_updates_per_sec");
        new.metrics.insert("new_metric".to_string(), 1.0);
        let result = compare(&old, &new, WARN_THRESHOLD, FAIL_THRESHOLD, true);
        assert_eq!(result.missing, vec!["ppo_updates_per_sec".to_string()]);
        assert_eq!(result.added, vec!["new_metric".to_string()]);
        assert!(result.failed());
        assert!(result
            .render_text(WARN_THRESHOLD, FAIL_THRESHOLD)
            .contains("missing from new report"));
    }

    /// Strict mode (the default CLI behaviour) fails on a metric the
    /// baseline lacks; `--allow-new` reports it informationally.
    #[test]
    fn unbaselined_metric_fails_strict_and_passes_allow_new() {
        let old = sample_report();
        let mut new = old.clone();
        new.metrics.insert("queue_ops_per_sec".to_string(), 1e7);
        let strict = compare(&old, &new, WARN_THRESHOLD, FAIL_THRESHOLD, false);
        assert_eq!(strict.added, vec!["queue_ops_per_sec".to_string()]);
        assert!(strict.failed(), "strict mode must gate unbaselined metrics");
        assert!(strict
            .render_text(WARN_THRESHOLD, FAIL_THRESHOLD)
            .contains("--allow-new"));
        let lenient = compare(&old, &new, WARN_THRESHOLD, FAIL_THRESHOLD, true);
        assert!(!lenient.failed());
        assert!(lenient
            .render_text(WARN_THRESHOLD, FAIL_THRESHOLD)
            .contains("new metric (no baseline)"));
    }

    /// `allocs_*` metrics are lower-is-better: an increase regresses, a
    /// decrease improves, and the thresholds gate in that direction.
    #[test]
    fn alloc_metrics_compare_inverted() {
        let mut old = sample_report();
        old.metrics.insert("allocs_per_sim_event".to_string(), 10.0);
        let mut new = old.clone();

        new.metrics.insert("allocs_per_sim_event".to_string(), 5.0);
        let result = compare(&old, &new, WARN_THRESHOLD, FAIL_THRESHOLD, true);
        assert!(
            !result.failed() && !result.warned(),
            "halving heap traffic is an improvement"
        );

        new.metrics.insert("allocs_per_sim_event".to_string(), 14.0);
        let result = compare(&old, &new, WARN_THRESHOLD, FAIL_THRESHOLD, true);
        let delta = result
            .deltas
            .iter()
            .find(|d| d.name == "allocs_per_sim_event")
            .unwrap();
        assert_eq!(delta.severity, Severity::Fail, "+40% heap traffic fails");
        assert!(result.failed());
    }

    #[test]
    fn perf_suite_smoke_produces_all_metrics_and_spans() {
        let (report, tree) = run_perf(&PerfOptions::smoke());
        assert_eq!(report.schema, SCHEMA);
        for metric in [
            "sim_events_per_sec",
            "nand_ops_per_sec",
            "windows_per_sec",
            "fleet_windows_per_sec",
            "fleet_events_per_sec",
            "rollout_steps_per_sec",
            "ppo_updates_per_sec",
            "queue_ops_per_sec",
            "store_ingest_events_per_sec",
        ] {
            let rate = report.metrics.get(metric).copied().unwrap_or(0.0);
            assert!(rate > 0.0, "{metric} should be positive, got {rate}");
        }
        assert!(!report.spans.is_empty(), "profiled pass found no spans");
        assert!(tree.find(&["perf.colocation"]).is_some());
        assert!(tree
            .spans
            .iter()
            .any(|s| s.name() == "ppo.update" || s.name() == "rollout.worker"));
        // The report survives a round trip at real scale too.
        let decoded = PerfReport::from_json(&report.to_json()).unwrap();
        assert_eq!(decoded, report);
    }
}
