//! `fleetio-bench`: the continuous perf-regression CLI.
//!
//! - `fleetio-bench perf [--scale ci|smoke] [--out PATH] [--folded PATH]`
//!   runs the perf suite and writes the schema-versioned BENCH JSON
//!   (default `BENCH_fleetio.json`); `--folded` also writes folded stacks
//!   for flamegraph tooling.
//! - `fleetio-bench compare <old.json> <new.json> [--allow-new]` diffs two
//!   reports and exits 1 when any metric regresses past the fail threshold,
//!   goes missing, or (without `--allow-new`) appears without a baseline;
//!   0 otherwise (warnings print but stay green). CI passes `--allow-new`
//!   so intentionally added metrics land without a chicken-and-egg dance.

use std::process::ExitCode;

use fleetio_bench::perf::{self, PerfOptions, PerfReport};

/// Attribute heap traffic to profiler spans when built with
/// `--features prof-alloc`.
#[cfg(feature = "prof-alloc")]
#[global_allocator]
static ALLOC: fleetio_obs::prof::alloc::CountingAllocator =
    fleetio_obs::prof::alloc::CountingAllocator;

const USAGE: &str = "usage:
  fleetio-bench perf [--scale ci|smoke] [--out PATH] [--folded PATH]
  fleetio-bench compare <old.json> <new.json> [--allow-new]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("perf") => cmd_perf(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_perf(args: &[String]) -> ExitCode {
    let mut opts = PerfOptions::ci();
    let mut out_path = "BENCH_fleetio.json".to_string();
    let mut folded_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().ok_or_else(|| {
                eprintln!("{flag} needs a value\n{USAGE}");
                ExitCode::from(2)
            })
        };
        match arg.as_str() {
            "--scale" => {
                opts = match value("--scale") {
                    Ok(s) if s == "ci" => PerfOptions::ci(),
                    Ok(s) if s == "smoke" => PerfOptions::smoke(),
                    Ok(s) => {
                        eprintln!("unknown scale {s:?} (ci|smoke)");
                        return ExitCode::from(2);
                    }
                    Err(code) => return code,
                };
            }
            "--out" => match value("--out") {
                Ok(p) => out_path = p,
                Err(code) => return code,
            },
            "--folded" => match value("--folded") {
                Ok(p) => folded_path = Some(p),
                Err(code) => return code,
            },
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let (report, tree) = perf::run_perf(&opts);
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(path) = folded_path {
        if let Err(e) = std::fs::write(&path, tree.folded()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    for (name, rate) in &report.metrics {
        println!("{name:>24}: {rate:.1}/s");
    }
    println!("\nprofiled pass (span tree):\n{}", tree.to_text());
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut allow_new = false;
    for arg in args {
        match arg.as_str() {
            "--allow-new" => allow_new = true,
            _ => paths.push(arg.as_str()),
        }
    }
    let [old_path, new_path] = paths[..] else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    ExitCode::from(compare_paths(old_path, new_path, allow_new))
}

/// The CI gate: 0 = within thresholds (warnings allowed), 1 = fail
/// breach, missing metric, or (strict mode) unbaselined metric,
/// 2 = unreadable/invalid report.
fn compare_paths(old_path: &str, new_path: &str, allow_new: bool) -> u8 {
    let load = |path: &str| -> Result<PerfReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        PerfReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let result = perf::compare(
        &old,
        &new,
        perf::WARN_THRESHOLD,
        perf::FAIL_THRESHOLD,
        allow_new,
    );
    print!(
        "{}",
        result.render_text(perf::WARN_THRESHOLD, perf::FAIL_THRESHOLD)
    );
    u8::from(result.failed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn write_report(name: &str, rate: f64) -> std::path::PathBuf {
        let mut metrics = BTreeMap::new();
        metrics.insert("sim_events_per_sec".to_string(), rate);
        let report = PerfReport {
            schema: perf::SCHEMA.to_string(),
            metrics,
            spans: Vec::new(),
        };
        let path = std::env::temp_dir().join(format!("fleetio-bench-test-{name}.json"));
        std::fs::write(&path, report.to_json()).expect("write temp report");
        path
    }

    #[test]
    fn compare_exit_codes_cover_pass_warn_fail_and_invalid() {
        let old = write_report("old", 1000.0);
        for (name, rate, expect) in [("pass", 990.0, 0u8), ("warn", 850.0, 0), ("fail", 700.0, 1)] {
            let new = write_report(name, rate);
            assert_eq!(
                compare_paths(old.to_str().unwrap(), new.to_str().unwrap(), false),
                expect,
                "{name}"
            );
        }
        assert_eq!(
            compare_paths(old.to_str().unwrap(), "/nonexistent.json", false),
            2
        );
    }

    #[test]
    fn compare_gates_unbaselined_metrics_unless_allowed() {
        let old = write_report("strict-old", 1000.0);
        let extra = {
            let mut metrics = BTreeMap::new();
            metrics.insert("sim_events_per_sec".to_string(), 1000.0);
            metrics.insert("brand_new_metric".to_string(), 5.0);
            let report = PerfReport {
                schema: perf::SCHEMA.to_string(),
                metrics,
                spans: Vec::new(),
            };
            let path = std::env::temp_dir().join("fleetio-bench-test-strict-new.json");
            std::fs::write(&path, report.to_json()).expect("write temp report");
            path
        };
        assert_eq!(
            compare_paths(old.to_str().unwrap(), extra.to_str().unwrap(), false),
            1,
            "strict mode must fail on an unbaselined metric"
        );
        assert_eq!(
            compare_paths(old.to_str().unwrap(), extra.to_str().unwrap(), true),
            0,
            "--allow-new accepts it"
        );
    }
}
