//! Benchmark harness regenerating every table and figure of the FleetIO
//! paper's evaluation (§4).
//!
//! The [`figures`] module contains one entry point per paper figure; the
//! `figures` binary drives them from the command line and the Criterion
//! benches reuse them at reduced scale. [`context::SharedContext`] caches
//! the expensive shared artifacts — device-peak calibration, per-workload
//! SLOs, the pre-trained RL models, the SSDKeeper planner — so a full
//! `figures all` run trains once and reuses everywhere.

pub mod context;
pub mod figures;
pub mod harness;
pub mod perf;
pub mod report;
pub mod scale;

pub use context::SharedContext;
pub use scale::Scale;
