//! Run-scale presets.
//!
//! `Quick` preserves every qualitative result (policy ordering, crossover
//! locations) in minutes; `Full` runs paper-length measurements and a much
//! larger pre-training budget. EXPERIMENTS.md records which scale produced
//! each documented number.

use fleetio::agent::PretrainOptions;
use fleetio::experiment::ExperimentOptions;
use fleetio::FleetIoConfig;

/// How big the runs are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-speed: short measurement spans and a small PPO budget on top of
    /// the behaviour-cloning warm start.
    Quick,
    /// Paper-scale measurement spans and training budget.
    Full,
    /// Minimal: smoke-test scale for Criterion benches.
    Tiny,
}

impl Scale {
    /// Parses `--full`/`--tiny` style flags.
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else if args.iter().any(|a| a == "--tiny") {
            Scale::Tiny
        } else {
            Scale::Quick
        }
    }

    /// Experiment options (measurement spans) for this scale.
    pub fn experiment_options(self, cfg: &FleetIoConfig, seed: u64) -> ExperimentOptions {
        let (measure, ramp) = match self {
            Scale::Tiny => (4, 1),
            Scale::Quick => (15, 3),
            Scale::Full => (60, 5),
        };
        ExperimentOptions {
            cfg: cfg.clone(),
            measure_windows: measure,
            ramp_windows: ramp,
            warm_fraction: 0.5,
            seed,
        }
    }

    /// Pre-training budget for this scale.
    pub fn pretrain_options(self) -> PretrainOptions {
        match self {
            Scale::Tiny => PretrainOptions {
                iterations: 0,
                windows_per_rollout: 8,
                warmup_iterations: 0,
                bc_rounds: 2,
                ..Default::default()
            },
            Scale::Quick => PretrainOptions {
                iterations: 8,
                windows_per_rollout: 16,
                warmup_iterations: 2,
                bc_rounds: 6,
                ..Default::default()
            },
            Scale::Full => PretrainOptions {
                iterations: 120,
                windows_per_rollout: 24,
                warmup_iterations: 6,
                bc_rounds: 10,
                ..Default::default()
            },
        }
    }

    /// Solo-run windows used for SLO calibration and profiling.
    pub fn calibration_windows(self) -> usize {
        match self {
            Scale::Tiny => 3,
            Scale::Quick => 6,
            Scale::Full => 20,
        }
    }

    /// Trace windows per workload for the Figure 6 clustering (requests
    /// per window follows, scaled down from the paper's 10 000).
    pub fn clustering(self) -> (usize, usize) {
        // Windows must span whole job cycles for the bandwidth-intensive
        // workloads (the paper's 10 000-request windows do), otherwise
        // k-means splits their read and write phases into separate
        // clusters.
        match self {
            Scale::Tiny => (4, 3_000),
            Scale::Quick => (6, 6_000),
            Scale::Full => (12, 10_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        assert_eq!(Scale::from_args(&[]), Scale::Quick);
        assert_eq!(Scale::from_args(&["--full".into()]), Scale::Full);
        assert_eq!(
            Scale::from_args(&["x".into(), "--tiny".into()]),
            Scale::Tiny
        );
    }

    #[test]
    fn scales_are_ordered() {
        let cfg = FleetIoConfig::default();
        let t = Scale::Tiny.experiment_options(&cfg, 0).measure_windows;
        let q = Scale::Quick.experiment_options(&cfg, 0).measure_windows;
        let f = Scale::Full.experiment_options(&cfg, 0).measure_windows;
        assert!(t < q && q < f);
        assert!(
            Scale::Full.pretrain_options().iterations > Scale::Quick.pretrain_options().iterations
        );
    }
}
