//! Micro-benchmarks for §4.7's overhead claims:
//! gSB creation (< 1 µs on the paper's device), admission-control batches
//! (0.8 ms per 1 000 actions), RL inference (1.1 ms per decision window),
//! and the PPO fine-tuning step (51.2 ms per 10 windows).
//!
//! Run with `cargo bench -p fleetio-bench --bench overheads`.

use fleetio::agent::{ppo_config, PretrainedModel};
use fleetio::{FleetIoAgent, FleetIoConfig, StateVector};
use fleetio_bench::harness::{bench_function, bench_with_setup};
use fleetio_des::rng::SmallRng;
use fleetio_flash::addr::ChannelId;
use fleetio_rl::{PpoPolicy, PpoTrainer, RolloutBuffer, Transition};
use fleetio_vssd::admission::{AdmissionControl, HarvestAction};
use fleetio_vssd::engine::{Engine, EngineConfig};
use fleetio_vssd::vssd::{VssdConfig, VssdId};

fn engine() -> Engine {
    let cfg = EngineConfig::default();
    let a: Vec<ChannelId> = (0..8).map(ChannelId).collect();
    let b: Vec<ChannelId> = (8..16).map(ChannelId).collect();
    Engine::new(
        cfg,
        vec![
            VssdConfig::hardware(VssdId(0), a),
            VssdConfig::hardware(VssdId(1), b),
        ],
    )
}

fn model() -> PretrainedModel {
    let cfg = FleetIoConfig::default();
    let mut rng = SmallRng::seed_from_u64(7);
    let policy = PpoPolicy::new(
        cfg.obs_dim(),
        &cfg.action_dims(),
        &cfg.hidden_layers,
        &mut rng,
    );
    PretrainedModel {
        policy,
        normalizer: fleetio_rl::ObsNormalizer::new(cfg.obs_dim(), 10.0),
    }
}

/// gSB creation/reclamation cycle (§4.7: creation is metadata-only, <1 µs
/// on the paper's platform).
fn bench_gsb_create() {
    let mut e = engine();
    let mut offer = 0usize;
    bench_function("overhead_gsb_create_reclaim", || {
        offer = if offer == 0 { 4 } else { 0 };
        e.set_harvestable_target(VssdId(0), offer);
    });
}

/// Admission control processing a 1 000-action batch (§4.7: 0.8 ms).
fn bench_admission_batch() {
    let ch_bw = 64.0 * 1024.0 * 1024.0;
    bench_function("overhead_admission_1000_actions", || {
        let mut ac = AdmissionControl::new();
        for i in 0..1000u32 {
            let v = VssdId(i % 8);
            if i % 2 == 0 {
                ac.submit(HarvestAction::MakeHarvestable {
                    vssd: v,
                    bytes_per_sec: ch_bw,
                });
            } else {
                ac.submit(HarvestAction::Harvest {
                    vssd: v,
                    bytes_per_sec: ch_bw,
                });
            }
        }
        std::hint::black_box(ac.drain_batch(8, &[], ch_bw));
    });
}

/// One greedy inference decision (§4.7: 1.1 ms per 2 s window in Python;
/// the from-scratch Rust MLP is far below that).
fn bench_inference() {
    let cfg = FleetIoConfig::default();
    let m = model();
    let mut agent = FleetIoAgent::new(&m, cfg.history_windows);
    let state = StateVector::zero();
    bench_function("overhead_inference_decision", || {
        std::hint::black_box(agent.decide(state));
    });
}

/// One PPO update over ten windows of experience (§4.7: 51.2 ms per ten
/// windows of fine-tuning).
fn bench_finetune_step() {
    let cfg = FleetIoConfig::default();
    let m = model();
    let obs_dim = cfg.obs_dim();
    let make_buffer = || {
        let mut buf = RolloutBuffer::new();
        for i in 0..10 {
            buf.push(Transition {
                obs: vec![0.1; obs_dim],
                action: vec![0, 0, 1],
                logp: -1.0,
                reward: 0.5 + 0.01 * i as f64,
                value: 0.4,
                done: i == 9,
                advantage: 0.0,
                ret: 0.0,
            });
        }
        buf
    };
    bench_with_setup(
        "overhead_finetune_10_windows",
        || {
            (
                PpoTrainer::new(m.policy.clone(), obs_dim, ppo_config(&cfg), 3),
                make_buffer(),
            )
        },
        |(mut trainer, buf)| {
            std::hint::black_box(trainer.update(buf));
        },
    );
}

fn main() {
    bench_gsb_create();
    bench_admission_batch();
    bench_inference();
    bench_finetune_step();
}
