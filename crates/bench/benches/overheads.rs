//! Criterion micro-benchmarks for §4.7's overhead claims:
//! gSB creation (< 1 µs on the paper's device), admission-control batches
//! (0.8 ms per 1 000 actions), RL inference (1.1 ms per decision window),
//! and the PPO fine-tuning step (51.2 ms per 10 windows).

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};
use fleetio::agent::{ppo_config, PretrainedModel};
use fleetio::{FleetIoAgent, FleetIoConfig, StateVector};
use fleetio_flash::addr::ChannelId;
use fleetio_rl::{PpoPolicy, PpoTrainer, RolloutBuffer, Transition};
use fleetio_vssd::admission::{AdmissionControl, HarvestAction};
use fleetio_vssd::engine::{Engine, EngineConfig};
use fleetio_vssd::vssd::{VssdConfig, VssdId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn engine() -> Engine {
    let cfg = EngineConfig::default();
    let a: Vec<ChannelId> = (0..8).map(ChannelId).collect();
    let b: Vec<ChannelId> = (8..16).map(ChannelId).collect();
    Engine::new(
        cfg,
        vec![VssdConfig::hardware(VssdId(0), a), VssdConfig::hardware(VssdId(1), b)],
    )
}

fn model() -> PretrainedModel {
    let cfg = FleetIoConfig::default();
    let mut rng = SmallRng::seed_from_u64(7);
    let policy = PpoPolicy::new(cfg.obs_dim(), &cfg.action_dims(), &cfg.hidden_layers, &mut rng);
    PretrainedModel {
        policy,
        normalizer: fleetio_rl::ObsNormalizer::new(cfg.obs_dim(), 10.0),
    }
}

/// gSB creation/reclamation cycle (§4.7: creation is metadata-only, <1 µs
/// on the paper's platform).
fn bench_gsb_create(c: &mut Criterion) {
    let mut e = engine();
    let mut offer = 0usize;
    c.bench_function("overhead_gsb_create_reclaim", |b| {
        b.iter(|| {
            offer = if offer == 0 { 4 } else { 0 };
            e.set_harvestable_target(VssdId(0), offer);
        })
    });
}

/// Admission control processing a 1 000-action batch (§4.7: 0.8 ms).
fn bench_admission_batch(c: &mut Criterion) {
    let ch_bw = 64.0 * 1024.0 * 1024.0;
    c.bench_function("overhead_admission_1000_actions", |b| {
        b.iter(|| {
            let mut ac = AdmissionControl::new();
            for i in 0..1000u32 {
                let v = VssdId(i % 8);
                if i % 2 == 0 {
                    ac.submit(HarvestAction::MakeHarvestable { vssd: v, bytes_per_sec: ch_bw });
                } else {
                    ac.submit(HarvestAction::Harvest { vssd: v, bytes_per_sec: ch_bw });
                }
            }
            ac.drain_batch(8, &HashMap::new(), ch_bw)
        })
    });
}

/// One greedy inference decision (§4.7: 1.1 ms per 2 s window in Python;
/// the from-scratch Rust MLP is far below that).
fn bench_inference(c: &mut Criterion) {
    let cfg = FleetIoConfig::default();
    let m = model();
    let mut agent = FleetIoAgent::new(&m, cfg.history_windows);
    let state = StateVector::zero();
    c.bench_function("overhead_inference_decision", |b| b.iter(|| agent.decide(state)));
}

/// One PPO update over ten windows of experience (§4.7: 51.2 ms per ten
/// windows of fine-tuning).
fn bench_finetune_step(c: &mut Criterion) {
    let cfg = FleetIoConfig::default();
    let m = model();
    let obs_dim = cfg.obs_dim();
    let make_buffer = || {
        let mut buf = RolloutBuffer::new();
        for i in 0..10 {
            buf.push(Transition {
                obs: vec![0.1; obs_dim],
                action: vec![0, 0, 1],
                logp: -1.0,
                reward: 0.5 + 0.01 * i as f64,
                value: 0.4,
                done: i == 9,
                advantage: 0.0,
                ret: 0.0,
            });
        }
        buf
    };
    c.bench_function("overhead_finetune_10_windows", |b| {
        b.iter_batched(
            || (PpoTrainer::new(m.policy.clone(), obs_dim, ppo_config(&cfg), 3), make_buffer()),
            |(mut trainer, buf)| trainer.update(buf),
            criterion::BatchSize::PerIteration,
        )
    });
}

criterion_group! {
    name = overheads;
    config = Criterion::default().without_plots();
    targets = bench_gsb_create, bench_admission_batch, bench_inference, bench_finetune_step,
}
criterion_main!(overheads);
