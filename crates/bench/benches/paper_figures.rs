//! Benches: one per paper figure, each timing a representative unit of
//! that figure's regeneration (one pair / one mix / one policy sweep) at
//! smoke scale.
//!
//! The shared context (device calibration, SLOs, the pre-trained model,
//! the SSDKeeper planner) is built **once per bench** and reused across
//! iterations, exactly as the `figures` binary amortizes it across a full
//! run. Full-figure regeneration lives in that binary
//! (`cargo run -p fleetio-bench --bin figures -- all [--full]`).
//!
//! Run with `cargo bench -p fleetio-bench --bench paper_figures`.

use fleetio_bench::context::ModelVariant;
use fleetio_bench::figures::{self, run_combo, PolicySpec};
use fleetio_bench::harness::bench_function;
use fleetio_bench::{Scale, SharedContext};
use fleetio_workloads::WorkloadKind::*;

fn warmed_ctx() -> SharedContext {
    let mut ctx = SharedContext::new(Scale::Tiny, 0xBE7C4);
    let _ = ctx.device_peak();
    let _ = ctx.slo(VdiWeb, 8);
    let _ = ctx.slo(Ycsb, 8);
    let _ = ctx.model(ModelVariant::Full);
    ctx
}

fn bench_fig02_fig03_motivation() {
    let mut ctx = warmed_ctx();
    bench_function("fig02_fig03_motivation_pair", || {
        let hw = run_combo(&mut ctx, PolicySpec::Hardware, &[VdiWeb, TeraSort], 1);
        let sw = run_combo(&mut ctx, PolicySpec::Software, &[VdiWeb, TeraSort], 1);
        std::hint::black_box((hw.avg_utilization, sw.avg_utilization));
    });
}

fn bench_fig06_clustering() {
    let mut ctx = warmed_ctx();
    bench_function("fig06_clustering", || {
        std::hint::black_box(figures::fig6(&mut ctx));
    });
}

fn bench_fig10_13_headline() {
    let mut ctx = warmed_ctx();
    let _ = ctx.ssdkeeper();
    bench_function("fig10_13_headline_pair", || {
        let u: Vec<f64> = PolicySpec::headline()
            .into_iter()
            .map(|spec| run_combo(&mut ctx, spec, &[Ycsb, TeraSort], 3).avg_utilization)
            .collect();
        std::hint::black_box(u);
    });
}

fn bench_fig14_scalability() {
    let mut ctx = warmed_ctx();
    bench_function("fig14_scalability_mix4", || {
        let mix = [VdiWeb, Ycsb, TeraSort, PageRank];
        std::hint::black_box(
            run_combo(&mut ctx, PolicySpec::FleetIo(ModelVariant::Full), &mix, 4).avg_utilization,
        );
    });
}

fn bench_fig15_reward_ablation() {
    let mut ctx = warmed_ctx();
    let _ = ctx.model(ModelVariant::CustomizedLocal);
    bench_function("fig15_reward_ablation_pair", || {
        std::hint::black_box(
            run_combo(
                &mut ctx,
                PolicySpec::FleetIo(ModelVariant::CustomizedLocal),
                &[VdiWeb, TeraSort],
                5,
            )
            .avg_utilization,
        );
    });
}

fn bench_fig16_mixed_isolation() {
    let mut ctx = warmed_ctx();
    let _ = ctx.slo(VdiWeb, 4);
    bench_function("fig16_mixed_isolation", || {
        std::hint::black_box(figures::fig16(&mut ctx));
    });
}

fn bench_fig17_transfer() {
    let mut ctx = warmed_ctx();
    // The transfer evaluation run (the tuning itself is the pretrain path
    // benched via fig15's variant training).
    bench_function("fig17_transfer_eval", || {
        std::hint::black_box(
            run_combo(
                &mut ctx,
                PolicySpec::FleetIo(ModelVariant::Full),
                &[Ycsb, TeraSort],
                7,
            )
            .bi_bandwidth(),
        );
    });
}

fn bench_tables() {
    let mut ctx = warmed_ctx();
    bench_function("tables_sanity", || {
        std::hint::black_box(figures::tables(&mut ctx));
    });
}

fn main() {
    bench_tables();
    bench_fig02_fig03_motivation();
    bench_fig06_clustering();
    bench_fig10_13_headline();
    bench_fig14_scalability();
    bench_fig15_reward_ablation();
    bench_fig16_mixed_isolation();
    bench_fig17_transfer();
}
