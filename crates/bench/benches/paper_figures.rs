//! Criterion benches: one per paper figure, each timing a representative
//! unit of that figure's regeneration (one pair / one mix / one policy
//! sweep) at smoke scale.
//!
//! The shared context (device calibration, SLOs, the pre-trained model,
//! the SSDKeeper planner) is built **once per bench** and reused across
//! iterations, exactly as the `figures` binary amortizes it across a full
//! run. Full-figure regeneration lives in that binary
//! (`cargo run -p fleetio-bench --bin figures -- all [--full]`).

use criterion::{criterion_group, criterion_main, Criterion};
use fleetio_bench::context::ModelVariant;
use fleetio_bench::figures::{self, run_combo, PolicySpec};
use fleetio_bench::{Scale, SharedContext};
use fleetio_workloads::WorkloadKind::*;

fn warmed_ctx() -> SharedContext {
    let mut ctx = SharedContext::new(Scale::Tiny, 0xBE7C4);
    let _ = ctx.device_peak();
    let _ = ctx.slo(VdiWeb, 8);
    let _ = ctx.slo(Ycsb, 8);
    let _ = ctx.model(ModelVariant::Full);
    ctx
}

fn bench_fig02_fig03_motivation(c: &mut Criterion) {
    let mut ctx = warmed_ctx();
    c.bench_function("fig02_fig03_motivation_pair", |b| {
        b.iter(|| {
            let hw = run_combo(&mut ctx, PolicySpec::Hardware, &[VdiWeb, TeraSort], 1);
            let sw = run_combo(&mut ctx, PolicySpec::Software, &[VdiWeb, TeraSort], 1);
            (hw.avg_utilization, sw.avg_utilization)
        })
    });
}

fn bench_fig06_clustering(c: &mut Criterion) {
    let mut ctx = warmed_ctx();
    c.bench_function("fig06_clustering", |b| b.iter(|| figures::fig6(&mut ctx)));
}

fn bench_fig10_13_headline(c: &mut Criterion) {
    let mut ctx = warmed_ctx();
    let _ = ctx.ssdkeeper();
    c.bench_function("fig10_13_headline_pair", |b| {
        b.iter(|| {
            PolicySpec::headline()
                .into_iter()
                .map(|spec| run_combo(&mut ctx, spec, &[Ycsb, TeraSort], 3).avg_utilization)
                .collect::<Vec<_>>()
        })
    });
}

fn bench_fig14_scalability(c: &mut Criterion) {
    let mut ctx = warmed_ctx();
    c.bench_function("fig14_scalability_mix4", |b| {
        b.iter(|| {
            let mix = [VdiWeb, Ycsb, TeraSort, PageRank];
            run_combo(&mut ctx, PolicySpec::FleetIo(ModelVariant::Full), &mix, 4).avg_utilization
        })
    });
}

fn bench_fig15_reward_ablation(c: &mut Criterion) {
    let mut ctx = warmed_ctx();
    let _ = ctx.model(ModelVariant::CustomizedLocal);
    c.bench_function("fig15_reward_ablation_pair", |b| {
        b.iter(|| {
            run_combo(
                &mut ctx,
                PolicySpec::FleetIo(ModelVariant::CustomizedLocal),
                &[VdiWeb, TeraSort],
                5,
            )
            .avg_utilization
        })
    });
}

fn bench_fig16_mixed_isolation(c: &mut Criterion) {
    let mut ctx = warmed_ctx();
    let _ = ctx.slo(VdiWeb, 4);
    c.bench_function("fig16_mixed_isolation", |b| b.iter(|| figures::fig16(&mut ctx)));
}

fn bench_fig17_transfer(c: &mut Criterion) {
    let mut ctx = warmed_ctx();
    c.bench_function("fig17_transfer_eval", |b| {
        // The transfer evaluation run (the tuning itself is the pretrain
        // path benched via fig15's variant training).
        b.iter(|| {
            run_combo(&mut ctx, PolicySpec::FleetIo(ModelVariant::Full), &[Ycsb, TeraSort], 7)
                .bi_bandwidth()
        })
    });
}

fn bench_tables(c: &mut Criterion) {
    let mut ctx = warmed_ctx();
    c.bench_function("tables_sanity", |b| b.iter(|| figures::tables(&mut ctx)));
}

criterion_group! {
    name = paper_figures;
    config = Criterion::default().sample_size(10).without_plots();
    targets =
        bench_tables,
        bench_fig02_fig03_motivation,
        bench_fig06_clustering,
        bench_fig10_13_headline,
        bench_fig14_scalability,
        bench_fig15_reward_ablation,
        bench_fig16_mixed_isolation,
        bench_fig17_transfer,
}
criterion_main!(paper_figures);
