//! The evaluation harness (§4 of the paper).
//!
//! Provides the building blocks every figure uses: device-peak
//! calibration, per-workload SLO calibration (P99 under hardware
//! isolation, §3.3.1), tenant layouts per policy, solo-run workload
//! profiling (for SSDKeeper and Figure 6), and the measured collocation
//! runner with per-window policy hooks.

use fleetio_des::summary::percentile;
use fleetio_des::SimDuration;
use fleetio_flash::addr::ChannelId;
use fleetio_vssd::vssd::{VssdConfig, VssdId};
use fleetio_workloads::features::windowed_features;
use fleetio_workloads::{
    AddrPattern, PhaseSpec, SizeDist, WindowFeatures, WorkloadCategory, WorkloadKind, WorkloadSpec,
};

use crate::baselines::WindowPolicy;
use crate::config::FleetIoConfig;
use crate::driver::{Colocation, TenantSpec};

/// Options shared by experiment runs.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// FleetIO/engine configuration.
    pub cfg: FleetIoConfig,
    /// Windows measured after the ramp.
    pub measure_windows: usize,
    /// Unmeasured ramp-up windows at the start.
    pub ramp_windows: usize,
    /// Pre-fill fraction before the run (§4.1: ≥ 50 %).
    pub warm_fraction: f64,
    /// Root random seed.
    pub seed: u64,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            cfg: FleetIoConfig::default(),
            measure_windows: 15,
            ramp_windows: 3,
            warm_fraction: 0.5,
            seed: 0xF1EE7,
        }
    }
}

/// Measured quality of one tenant over a run.
#[derive(Debug, Clone)]
pub struct TenantMetrics {
    /// The vSSD.
    pub id: VssdId,
    /// The workload it ran.
    pub kind: WorkloadKind,
    /// Mean achieved bandwidth over the measured span, bytes/second.
    pub avg_bandwidth: f64,
    /// P95 request latency.
    pub p95: SimDuration,
    /// P99 request latency (the paper's headline tail metric).
    pub p99: SimDuration,
    /// P99.9 request latency.
    pub p999: SimDuration,
    /// Fraction of requests violating the SLO.
    pub slo_violation_rate: f64,
    /// Requests completed.
    pub requests: u64,
}

/// Measured outcome of one collocation run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// The policy that drove the run.
    pub policy: String,
    /// Per-tenant quality.
    pub tenants: Vec<TenantMetrics>,
    /// Mean device bandwidth utilization over measured windows, `[0, 1]`
    /// against the calibrated peak.
    pub avg_utilization: f64,
    /// P95 of the per-window utilization series.
    pub p95_utilization: f64,
    /// Sum of tenant bandwidths, bytes/second.
    pub total_bandwidth: f64,
}

impl RunMetrics {
    /// The bandwidth-intensive tenants' mean bandwidth (Figure 13's
    /// numerator); `None` if no BI tenant ran.
    pub fn bi_bandwidth(&self) -> Option<f64> {
        let bi: Vec<f64> = self
            .tenants
            .iter()
            .filter(|t| t.kind.category() == WorkloadCategory::BandwidthIntensive)
            .map(|t| t.avg_bandwidth)
            .collect();
        (!bi.is_empty()).then(|| bi.iter().sum::<f64>() / bi.len() as f64)
    }

    /// Mean P99 across latency-sensitive tenants (Figure 12's numerator).
    pub fn lc_p99(&self) -> Option<SimDuration> {
        let lc: Vec<u64> = self
            .tenants
            .iter()
            .filter(|t| t.kind.category() == WorkloadCategory::LatencySensitive)
            .map(|t| t.p99.as_nanos())
            .collect();
        (!lc.is_empty()).then(|| SimDuration::from_nanos(lc.iter().sum::<u64>() / lc.len() as u64))
    }
}

/// Builds a hardware-isolated layout: `workloads[i]` gets an equal share
/// of the device's channels (FleetIO's default starting point, §4.1).
///
/// # Panics
///
/// Panics if there are more workloads than channels.
pub fn hardware_layout(
    cfg: &FleetIoConfig,
    workloads: &[WorkloadKind],
    slos: &[Option<SimDuration>],
    seed: u64,
) -> Vec<TenantSpec> {
    let channels = usize::from(cfg.engine.flash.channels);
    assert!(workloads.len() <= channels, "more tenants than channels");
    let alloc = crate::baselines::proportional_split(&vec![1.0; workloads.len()], channels);
    planned_layout(cfg, workloads, &alloc, slos, seed)
}

/// Builds a hardware-isolated layout with an explicit per-tenant channel
/// allocation (SSDKeeper's planned partition).
///
/// # Panics
///
/// Panics if the allocation does not cover exactly the device's channels
/// or the slices disagree in length.
pub fn planned_layout(
    cfg: &FleetIoConfig,
    workloads: &[WorkloadKind],
    allocation: &[usize],
    slos: &[Option<SimDuration>],
    seed: u64,
) -> Vec<TenantSpec> {
    assert_eq!(
        workloads.len(),
        allocation.len(),
        "one allocation per workload"
    );
    assert_eq!(workloads.len(), slos.len(), "one SLO slot per workload");
    let total: usize = allocation.iter().sum();
    assert_eq!(
        total,
        usize::from(cfg.engine.flash.channels),
        "allocation must cover device"
    );
    let mut next = 0u16;
    workloads
        .iter()
        .zip(allocation.iter().zip(slos))
        .enumerate()
        .map(|(i, (kind, (n, slo)))| {
            let chans: Vec<ChannelId> = (next..next + *n as u16).map(ChannelId).collect();
            next += *n as u16;
            let mut vc = VssdConfig::hardware(VssdId(i as u32), chans);
            vc.slo = *slo;
            TenantSpec::new(vc, *kind, seed.wrapping_add(i as u64 * 31))
        })
        .collect()
}

/// Builds a software-isolated layout: every tenant shares all channels
/// (token-bucket/stride machinery engaged, no hard caps by default).
pub fn software_layout(
    cfg: &FleetIoConfig,
    workloads: &[WorkloadKind],
    slos: &[Option<SimDuration>],
    seed: u64,
) -> Vec<TenantSpec> {
    assert_eq!(workloads.len(), slos.len(), "one SLO slot per workload");
    let all: Vec<ChannelId> = (0..cfg.engine.flash.channels).map(ChannelId).collect();
    let share = 1.0 / workloads.len() as f64;
    workloads
        .iter()
        .zip(slos)
        .enumerate()
        .map(|(i, (kind, slo))| {
            let mut vc =
                VssdConfig::software(VssdId(i as u32), all.clone()).with_capacity_share(share);
            vc.slo = *slo;
            TenantSpec::new(vc, *kind, seed.wrapping_add(i as u64 * 31))
        })
        .collect()
}

/// Figure 16's mixed layout: `hw` tenants each hardware-isolated on
/// `hw_channels` own channels; `sw` tenants software-share the remainder.
///
/// # Panics
///
/// Panics if the channel arithmetic does not fit the device.
pub fn mixed_layout(
    cfg: &FleetIoConfig,
    hw: &[WorkloadKind],
    hw_channels: usize,
    sw: &[WorkloadKind],
    slos_hw: &[Option<SimDuration>],
    seed: u64,
) -> Vec<TenantSpec> {
    let total = usize::from(cfg.engine.flash.channels);
    let hw_total = hw.len() * hw_channels;
    assert!(hw_total < total, "hardware share exceeds device");
    assert_eq!(hw.len(), slos_hw.len(), "one SLO per hardware tenant");
    let mut tenants = Vec::new();
    let mut next = 0u16;
    for (i, (kind, slo)) in hw.iter().zip(slos_hw).enumerate() {
        let chans: Vec<ChannelId> = (next..next + hw_channels as u16).map(ChannelId).collect();
        next += hw_channels as u16;
        let mut vc = VssdConfig::hardware(VssdId(i as u32), chans);
        vc.slo = *slo;
        tenants.push(TenantSpec::new(vc, *kind, seed.wrapping_add(i as u64 * 31)));
    }
    let shared: Vec<ChannelId> = (next..total as u16).map(ChannelId).collect();
    let share = 1.0 / sw.len().max(1) as f64;
    for (j, kind) in sw.iter().enumerate() {
        let id = VssdId((hw.len() + j) as u32);
        let vc = VssdConfig::software(id, shared.clone()).with_capacity_share(share);
        tenants.push(TenantSpec::new(
            vc,
            *kind,
            seed.wrapping_add((hw.len() + j) as u64 * 31),
        ));
    }
    tenants
}

/// A saturating read workload used only for device-peak calibration.
fn saturating_spec() -> WorkloadSpec {
    WorkloadSpec {
        name: "calibration-saturate",
        phases: vec![PhaseSpec {
            duration: SimDuration::from_secs(10),
            arrival_rate: 0.0,
            read_fraction: 1.0,
            size: SizeDist::Fixed(1 << 20),
            addr: AddrPattern::Sequential { region: 0 },
            concurrency: 128,
        }],
        footprint: 0.6,
        regions: 1,
    }
}

/// Measures the device's peak deliverable bandwidth (bytes/second) with a
/// saturating sequential-read run over all channels. Utilization numbers
/// are reported against this, as on real hardware.
pub fn measure_device_peak(cfg: &FleetIoConfig, seed: u64) -> f64 {
    let all: Vec<ChannelId> = (0..cfg.engine.flash.channels).map(ChannelId).collect();
    let vc = VssdConfig::hardware(VssdId(0), all);
    // Feed the saturating spec through a one-tenant colocation by
    // registering it under a synthetic kind-independent tenant: reuse the
    // driver with TeraSort's slot but swap the generator via a dedicated
    // mini-driver below.
    let mut coloc = Colocation::new(
        cfg.engine.clone(),
        vec![TenantSpec::new(vc, WorkloadKind::TeraSort, seed)],
        cfg.decision_interval,
    );
    coloc.override_spec(VssdId(0), saturating_spec(), seed);
    coloc.warm_up(0.3);
    let mut best: f64 = 0.0;
    for _ in 0..4 {
        let out = coloc.run_window();
        best = best.max(out[0].1.avg_bandwidth);
    }
    best.max(1.0)
}

/// Calibrates a workload's SLO: its P99 latency running alone on
/// `n_channels` hardware-isolated channels (§3.3.1's default SLO).
pub fn calibrate_slo(
    cfg: &FleetIoConfig,
    kind: WorkloadKind,
    n_channels: usize,
    windows: usize,
    seed: u64,
) -> SimDuration {
    let chans: Vec<ChannelId> = (0..n_channels as u16).map(ChannelId).collect();
    let vc = VssdConfig::hardware(VssdId(0), chans);
    let mut coloc = Colocation::new(
        cfg.engine.clone(),
        vec![TenantSpec::new(vc, kind, seed)],
        cfg.decision_interval,
    );
    coloc.warm_up(0.5);
    for _ in 0..windows {
        let _ = coloc.run_window();
    }
    coloc
        .engine()
        .cumulative(VssdId(0))
        .latency
        .percentile(99.0)
        .unwrap_or(SimDuration::from_millis(1))
}

/// Profiles a workload's I/O features from a solo run (used by SSDKeeper
/// training and the Figure 6 clustering). Runs the workload until its
/// trace holds `feature_windows` windows of `window_requests` requests
/// each and returns exactly that many per-window feature vectors, so every
/// workload contributes a balanced sample to clustering regardless of its
/// request rate.
pub fn workload_feature_windows(
    cfg: &FleetIoConfig,
    kind: WorkloadKind,
    n_channels: usize,
    feature_windows: usize,
    window_requests: usize,
    seed: u64,
) -> Vec<WindowFeatures> {
    let chans: Vec<ChannelId> = (0..n_channels as u16).map(ChannelId).collect();
    let vc = VssdConfig::hardware(VssdId(0), chans);
    let mut coloc = Colocation::new(
        cfg.engine.clone(),
        vec![TenantSpec::new(vc, kind, seed)],
        cfg.decision_interval,
    );
    coloc.warm_up(0.3);
    let needed = feature_windows * window_requests;
    // Generous bound: stop either when the trace suffices or after enough
    // simulated time that a pathologically slow stream cannot stall us.
    for _ in 0..4096 {
        if coloc.trace_of(VssdId(0)).len() >= needed {
            break;
        }
        let _ = coloc.run_window();
    }
    let space = coloc.engine().logical_capacity_bytes(VssdId(0));
    let mut feats = windowed_features(coloc.trace_of(VssdId(0)), space, window_requests);
    feats.truncate(feature_windows);
    feats
}

/// Profiles a workload's channel demand for SSDKeeper: the smallest
/// allocation (from `candidates`) whose solo bandwidth reaches 90 % of the
/// largest allocation's (BI) or whose P99 is within 20 % of the best (LC).
pub fn profile_channel_demand(
    cfg: &FleetIoConfig,
    kind: WorkloadKind,
    candidates: &[usize],
    windows: usize,
    seed: u64,
) -> usize {
    assert!(!candidates.is_empty(), "need candidate channel counts");
    let mut results: Vec<(usize, f64, SimDuration)> = Vec::new();
    for &n in candidates {
        let chans: Vec<ChannelId> = (0..n as u16).map(ChannelId).collect();
        let vc = VssdConfig::hardware(VssdId(0), chans);
        let mut coloc = Colocation::new(
            cfg.engine.clone(),
            vec![TenantSpec::new(vc, kind, seed)],
            cfg.decision_interval,
        );
        coloc.warm_up(0.3);
        let mut bw = 0.0;
        for _ in 0..windows {
            let out = coloc.run_window();
            bw += out[0].1.avg_bandwidth;
        }
        bw /= windows as f64;
        let p99 = coloc
            .engine()
            .cumulative(VssdId(0))
            .latency
            .percentile(99.0)
            .unwrap_or(SimDuration::from_millis(1));
        results.push((n, bw, p99));
    }
    let best_bw = results.iter().map(|(_, b, _)| *b).fold(0.0f64, f64::max);
    let best_p99 = results
        .iter()
        .map(|(_, _, p)| p.as_nanos())
        .min()
        .unwrap_or(1);
    let ok = |r: &(usize, f64, SimDuration)| match kind.category() {
        WorkloadCategory::BandwidthIntensive => r.1 >= 0.9 * best_bw,
        WorkloadCategory::LatencySensitive => r.2.as_nanos() as f64 <= 1.2 * best_p99 as f64,
    };
    results
        .iter()
        .filter(|r| ok(r))
        .map(|(n, _, _)| *n)
        .min()
        .unwrap_or_else(|| *candidates.last().expect("non-empty"))
}

/// Runs one measured collocation under `policy`. `window_hook` fires after
/// every window (measured windows are indexed from 0 after the ramp;
/// negative indices would be the ramp, which the hook does not see).
/// A per-window callback given the measured-window index and the running
/// collocation (used by the Figure 17 swap experiments).
pub type WindowHook<'a> = &'a mut dyn FnMut(usize, &mut Colocation);

pub fn run_collocation(
    policy: &mut dyn WindowPolicy,
    tenants: Vec<TenantSpec>,
    opts: &ExperimentOptions,
    device_peak: f64,
    mut window_hook: Option<WindowHook<'_>>,
) -> RunMetrics {
    assert!(device_peak > 0.0, "device peak must be calibrated");
    let kinds: Vec<WorkloadKind> = tenants.iter().map(|t| t.kind).collect();
    let mut coloc = Colocation::new(opts.cfg.engine.clone(), tenants, opts.cfg.decision_interval);
    coloc.warm_up(opts.warm_fraction);

    let window_secs = opts.cfg.decision_interval.as_secs_f64();
    let mut utilizations: Vec<f64> = Vec::with_capacity(opts.measure_windows);
    for w in 0..opts.ramp_windows + opts.measure_windows {
        if w == opts.ramp_windows {
            let ids = coloc.tenant_ids();
            for id in ids {
                coloc.engine_mut().reset_cumulative(id);
            }
        }
        let summaries = coloc.run_window();
        if w >= opts.ramp_windows {
            let bytes: u64 = summaries.iter().map(|(_, s)| s.total_bytes).sum();
            utilizations.push(bytes as f64 / (window_secs * device_peak));
            policy.on_window(&mut coloc, &summaries);
            if let Some(hook) = window_hook.as_mut() {
                hook(w - opts.ramp_windows, &mut coloc);
            }
        } else {
            policy.on_window(&mut coloc, &summaries);
        }
    }

    let measured_secs = opts.measure_windows as f64 * window_secs;
    let ids = coloc.tenant_ids();
    let tenants_out: Vec<TenantMetrics> = ids
        .iter()
        .zip(kinds)
        .map(|(id, kind)| {
            let cum = coloc.engine().cumulative(*id);
            let pct = |p: f64| cum.latency.percentile(p).unwrap_or(SimDuration::ZERO);
            TenantMetrics {
                id: *id,
                kind,
                avg_bandwidth: cum.bytes as f64 / measured_secs,
                p95: pct(95.0),
                p99: pct(99.0),
                p999: pct(99.9),
                slo_violation_rate: if cum.requests == 0 {
                    0.0
                } else {
                    cum.slo_violations as f64 / cum.requests as f64
                },
                requests: cum.requests,
            }
        })
        .collect();
    let total_bandwidth: f64 = tenants_out.iter().map(|t| t.avg_bandwidth).sum();
    let avg_utilization = utilizations.iter().sum::<f64>() / utilizations.len().max(1) as f64;
    let p95_utilization = percentile(&utilizations, 95.0).unwrap_or(avg_utilization);
    RunMetrics {
        policy: policy.name().to_string(),
        tenants: tenants_out,
        avg_utilization,
        p95_utilization,
        total_bandwidth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_flash::config::FlashConfig;
    use fleetio_vssd::vssd::IsolationMode;

    fn tiny_opts() -> ExperimentOptions {
        let mut cfg = FleetIoConfig::default();
        cfg.engine.flash = FlashConfig::training_test();
        cfg.decision_interval = SimDuration::from_millis(500);
        ExperimentOptions {
            cfg,
            measure_windows: 3,
            ramp_windows: 1,
            warm_fraction: 0.3,
            seed: 1,
        }
    }

    #[test]
    fn hardware_layout_splits_equally() {
        let opts = tiny_opts();
        let t = hardware_layout(
            &opts.cfg,
            &[WorkloadKind::Ycsb, WorkloadKind::TeraSort],
            &[None, None],
            1,
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].config.channels.len(), 2);
        assert_eq!(t[1].config.channels.len(), 2);
        assert_eq!(t[0].config.isolation, IsolationMode::Hardware);
        // Disjoint channels.
        assert!(t[0]
            .config
            .channels
            .iter()
            .all(|c| !t[1].config.channels.contains(c)));
    }

    #[test]
    fn software_layout_shares_everything() {
        let opts = tiny_opts();
        let t = software_layout(
            &opts.cfg,
            &[WorkloadKind::Ycsb, WorkloadKind::TeraSort],
            &[None, None],
            1,
        );
        assert_eq!(t[0].config.channels.len(), 4);
        assert_eq!(t[0].config.channels, t[1].config.channels);
        assert_eq!(t[0].config.isolation, IsolationMode::Software);
    }

    #[test]
    fn mixed_layout_partitions_correctly() {
        let opts = tiny_opts();
        let t = mixed_layout(
            &opts.cfg,
            &[WorkloadKind::VdiWeb],
            2,
            &[WorkloadKind::TeraSort],
            &[None],
            1,
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].config.channels.len(), 2);
        assert_eq!(t[1].config.channels.len(), 2);
        assert_eq!(t[1].config.isolation, IsolationMode::Software);
    }

    #[test]
    fn device_peak_is_positive_and_sane() {
        let opts = tiny_opts();
        let peak = measure_device_peak(&opts.cfg, 3);
        // 4 channels × 64 MiB/s = 268 MB/s theoretical; measured peak must
        // land within (50 %, 105 %] of that.
        let theory = opts.cfg.engine.flash.device_peak_bytes_per_sec();
        assert!(peak > 0.5 * theory, "peak {peak} vs theory {theory}");
        assert!(peak <= 1.05 * theory, "peak {peak} vs theory {theory}");
    }

    #[test]
    fn calibrated_slo_is_reasonable() {
        let opts = tiny_opts();
        let slo = calibrate_slo(&opts.cfg, WorkloadKind::Ycsb, 2, 3, 4);
        // YCSB 4 KiB reads: base ~110 µs, P99 under queueing somewhere
        // below 50 ms on two channels.
        assert!(slo > SimDuration::from_micros(100), "slo {slo}");
        assert!(slo < SimDuration::from_millis(50), "slo {slo}");
    }

    #[test]
    fn run_collocation_produces_metrics() {
        let opts = tiny_opts();
        let peak = measure_device_peak(&opts.cfg, 3);
        let tenants = hardware_layout(
            &opts.cfg,
            &[WorkloadKind::Ycsb, WorkloadKind::TeraSort],
            &[Some(SimDuration::from_millis(2)), None],
            opts.seed,
        );
        let mut policy = crate::baselines::StaticPolicy::hardware();
        let m = run_collocation(&mut policy, tenants, &opts, peak, None);
        assert_eq!(m.tenants.len(), 2);
        assert!(
            m.avg_utilization > 0.0 && m.avg_utilization <= 1.2,
            "{}",
            m.avg_utilization
        );
        assert!(m.bi_bandwidth().unwrap() > 0.0);
        assert!(m.lc_p99().unwrap() > SimDuration::ZERO);
        assert_eq!(m.policy, "hardware-isolation");
    }

    #[test]
    fn window_hook_fires_each_measured_window() {
        let opts = tiny_opts();
        let tenants = hardware_layout(&opts.cfg, &[WorkloadKind::Ycsb], &[None], opts.seed);
        let mut policy = crate::baselines::StaticPolicy::hardware();
        let mut seen = Vec::new();
        let mut hook = |w: usize, _c: &mut Colocation| seen.push(w);
        let _ = run_collocation(&mut policy, tenants, &opts, 1e9, Some(&mut hook));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn run_metrics_helpers_pick_categories() {
        let t = |kind: WorkloadKind, bw: f64, p99_us: u64| TenantMetrics {
            id: VssdId(0),
            kind,
            avg_bandwidth: bw,
            p95: SimDuration::from_micros(p99_us / 2),
            p99: SimDuration::from_micros(p99_us),
            p999: SimDuration::from_micros(p99_us * 2),
            slo_violation_rate: 0.0,
            requests: 100,
        };
        let m = RunMetrics {
            policy: "x".into(),
            tenants: vec![
                t(WorkloadKind::Ycsb, 1e7, 800),
                t(WorkloadKind::TeraSort, 4e8, 5_000),
                t(WorkloadKind::PageRank, 6e8, 6_000),
            ],
            avg_utilization: 0.5,
            p95_utilization: 0.6,
            total_bandwidth: 1.01e9,
        };
        // BI mean over the two analytics tenants only.
        assert!((m.bi_bandwidth().unwrap() - 5e8).abs() < 1.0);
        // LC P99 over the single latency tenant.
        assert_eq!(m.lc_p99().unwrap(), SimDuration::from_micros(800));
    }

    #[test]
    fn feature_windows_capture_workload_character() {
        let opts = tiny_opts();
        let f = workload_feature_windows(&opts.cfg, WorkloadKind::Ycsb, 2, 4, 1000, 5);
        assert!(!f.is_empty());
        // YCSB: small requests.
        assert!(
            f[0].avg_io_size < 32.0 * 1024.0,
            "size {}",
            f[0].avg_io_size
        );
    }
}
