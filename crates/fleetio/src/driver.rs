//! The collocation driver: workloads × vSSDs × engine, window by window.
//!
//! Latency-sensitive workloads replay open-loop (timed Poisson arrivals);
//! bandwidth-intensive workloads run closed-loop (a target number of
//! outstanding requests, §see `fleetio-workloads`). The driver advances
//! the engine in small ticks so closed-loop sources are topped up promptly
//! after completions, and freezes per-vSSD window summaries at each
//! decision boundary.

use fleetio_des::window::WindowSummary;
use fleetio_des::SimDuration;
use fleetio_vssd::engine::{Engine, EngineConfig};
use fleetio_vssd::request::{IoOp, IoRequest};
use fleetio_vssd::vssd::{VssdConfig, VssdId};
use fleetio_workloads::gen::ClosedLoopWorkload;
use fleetio_workloads::{SyntheticWorkload, TraceRecord, WorkloadKind};

/// One tenant of a collocation: a vSSD plus the workload running on it.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// The vSSD configuration (channels, isolation, SLO, throttling).
    pub config: VssdConfig,
    /// The workload to run.
    pub kind: WorkloadKind,
    /// Seed for the workload's random stream.
    pub seed: u64,
    /// The tenant's service-level objective (p95/p99 latency targets
    /// plus an optional throughput floor), evaluated per decision
    /// window by the fleet's SLO accounting. `None` exempts the tenant.
    /// Distinct from `config.slo`, the engine's per-request scheduling
    /// deadline.
    pub slo_spec: Option<fleetio_obs::SloSpec>,
}

impl TenantSpec {
    /// Convenience constructor (no window-level SLO).
    pub fn new(config: VssdConfig, kind: WorkloadKind, seed: u64) -> Self {
        TenantSpec {
            config,
            kind,
            seed,
            slo_spec: None,
        }
    }

    /// Attaches a window-level SLO.
    pub fn with_slo_spec(mut self, slo: fleetio_obs::SloSpec) -> Self {
        self.slo_spec = Some(slo);
        self
    }
}

#[derive(Debug)]
enum Source {
    Open(SyntheticWorkload),
    Closed {
        gen: ClosedLoopWorkload,
        outstanding: u32,
    },
}

#[derive(Debug)]
struct Tenant {
    id: VssdId,
    kind: WorkloadKind,
    source: Source,
    trace: Vec<TraceRecord>,
}

/// A running collocation experiment.
#[derive(Debug)]
pub struct Colocation {
    engine: Engine,
    tenants: Vec<Tenant>,
    window: SimDuration,
    tick: SimDuration,
    trace_cap: usize,
}

impl Colocation {
    /// Builds a collocation on an engine described by `engine_cfg`.
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations (see [`Engine::new`]).
    pub fn new(engine_cfg: EngineConfig, tenants: Vec<TenantSpec>, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        let configs: Vec<VssdConfig> = tenants.iter().map(|t| t.config.clone()).collect();
        let engine = Engine::new(engine_cfg, configs);
        let tenants = tenants
            .into_iter()
            .map(|spec| {
                let id = spec.config.id;
                let capacity = engine.logical_capacity_bytes(id);
                let spec_w = spec.kind.spec();
                let source = if spec_w.is_closed_loop() {
                    Source::Closed {
                        gen: ClosedLoopWorkload::new(spec_w, capacity, spec.seed),
                        outstanding: 0,
                    }
                } else {
                    Source::Open(SyntheticWorkload::new(spec_w, capacity, spec.seed))
                };
                Tenant {
                    id,
                    kind: spec.kind,
                    source,
                    trace: Vec::new(),
                }
            })
            .collect();
        Colocation {
            engine,
            tenants,
            window,
            tick: SimDuration::from_millis(1),
            trace_cap: 100_000,
        }
    }

    /// The engine, for policies that act on it.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// The engine, read-only.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Installs an observability sink on the engine, returning the previous
    /// one. Every [`Colocation::run_window`] then streams the request
    /// lifecycle, NAND spans, GC/gSB activity and per-tenant window flushes
    /// into it; sinks never change simulation results.
    pub fn set_obs_sink(
        &mut self,
        sink: Box<dyn fleetio_obs::ObsSink>,
    ) -> Box<dyn fleetio_obs::ObsSink> {
        self.engine.set_obs_sink(sink)
    }

    /// Removes the engine's sink (restoring the no-op default) so its
    /// captured trace can be exported.
    pub fn take_obs_sink(&mut self) -> Box<dyn fleetio_obs::ObsSink> {
        self.engine.take_obs_sink()
    }

    /// Tenant ids in registration order.
    pub fn tenant_ids(&self) -> Vec<VssdId> {
        self.tenants.iter().map(|t| t.id).collect()
    }

    /// The workload kind running on `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a tenant.
    pub fn kind_of(&self, id: VssdId) -> WorkloadKind {
        self.tenants
            .iter()
            .find(|t| t.id == id)
            .unwrap_or_else(|| panic!("unknown tenant {id}"))
            .kind
    }

    /// Swaps the workload on tenant `id` (used by the Figure 17 robustness
    /// experiment). The new stream starts at the current simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a tenant.
    pub fn swap_workload(&mut self, id: VssdId, kind: WorkloadKind, seed: u64) {
        let capacity = self.engine.logical_capacity_bytes(id);
        let tenant = self
            .tenants
            .iter_mut()
            .find(|t| t.id == id)
            .unwrap_or_else(|| panic!("unknown tenant {id}"));
        let spec = kind.spec();
        // Carry over the outstanding count so in-flight requests drain
        // naturally under the new source.
        let outstanding = match &tenant.source {
            Source::Closed { outstanding, .. } => *outstanding,
            Source::Open(_) => 0,
        };
        tenant.kind = kind;
        tenant.source = if spec.is_closed_loop() {
            Source::Closed {
                gen: ClosedLoopWorkload::new(spec, capacity, seed),
                outstanding,
            }
        } else {
            let mut gen = SyntheticWorkload::new(spec, capacity, seed);
            // Fast-forward the open-loop clock to now.
            let _ = gen.requests_until(self.engine.now());
            Source::Open(gen)
        };
    }

    /// Replaces tenant `id`'s generator with an arbitrary spec (used by
    /// calibration runs that need synthetic load shapes outside the named
    /// workload catalogue). The tenant keeps its reported kind.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a tenant or the spec is invalid.
    pub fn override_spec(&mut self, id: VssdId, spec: fleetio_workloads::WorkloadSpec, seed: u64) {
        let capacity = self.engine.logical_capacity_bytes(id);
        let tenant = self
            .tenants
            .iter_mut()
            .find(|t| t.id == id)
            .unwrap_or_else(|| panic!("unknown tenant {id}"));
        tenant.source = if spec.is_closed_loop() {
            Source::Closed {
                gen: ClosedLoopWorkload::new(spec, capacity, seed),
                outstanding: 0,
            }
        } else {
            Source::Open(SyntheticWorkload::new(spec, capacity, seed))
        };
    }

    /// The decision-window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Pre-fills every tenant's vSSD to `fraction` of its logical space
    /// (§4.1 warm-up).
    pub fn warm_up(&mut self, fraction: f64) {
        let ids = self.tenant_ids();
        for id in ids {
            self.engine.warm_up(id, fraction);
        }
    }

    /// The I/O trace collected for tenant `id` (most recent requests, up
    /// to an internal cap), for workload typing.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a tenant.
    pub fn trace_of(&self, id: VssdId) -> &[TraceRecord] {
        &self
            .tenants
            .iter()
            .find(|t| t.id == id)
            .unwrap_or_else(|| panic!("unknown tenant {id}"))
            .trace
    }

    /// Advances one decision window, feeding workloads and returning the
    /// per-tenant window summaries in tenant order.
    pub fn run_window(&mut self) -> Vec<(VssdId, WindowSummary)> {
        let end = self.engine.now() + self.window;
        while self.engine.now() < end {
            let t = (self.engine.now() + self.tick).min(end);
            // Open-loop arrivals up to t.
            for tenant in &mut self.tenants {
                if let Source::Open(gen) = &mut tenant.source {
                    for rec in gen.requests_until(t) {
                        push_trace(&mut tenant.trace, self.trace_cap, rec);
                        self.engine.submit(to_request(tenant.id, rec));
                    }
                }
            }
            self.engine.run_until(t);
            // Account completions against closed-loop windows.
            let completed = self.engine.drain_completed();
            for c in completed {
                if let Some(tenant) = self.tenants.iter_mut().find(|x| x.id == c.vssd) {
                    if let Source::Closed { outstanding, .. } = &mut tenant.source {
                        *outstanding = outstanding.saturating_sub(1);
                    }
                }
            }
            // Top closed-loop sources up to their phase concurrency.
            let now = self.engine.now();
            for tenant in &mut self.tenants {
                if let Source::Closed { gen, outstanding } = &mut tenant.source {
                    let target = gen.concurrency_at(now);
                    while *outstanding < target {
                        let rec = gen.make_request(now);
                        push_trace(&mut tenant.trace, self.trace_cap, rec);
                        self.engine.submit(to_request(tenant.id, rec));
                        *outstanding += 1;
                    }
                }
            }
        }
        self.tenants
            .iter()
            .map(|t| t.id)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|id| (id, self.engine.finish_window(id)))
            .collect()
    }

    /// Runs `n` windows, discarding summaries (warm-up / fast-forward).
    pub fn run_windows(&mut self, n: usize) {
        for _ in 0..n {
            let _ = self.run_window();
        }
    }
}

fn to_request(vssd: VssdId, rec: TraceRecord) -> IoRequest {
    IoRequest {
        vssd,
        op: if rec.is_read { IoOp::Read } else { IoOp::Write },
        offset: rec.offset,
        len: rec.len,
        arrival: rec.at,
    }
}

fn push_trace(trace: &mut Vec<TraceRecord>, cap: usize, rec: TraceRecord) {
    if trace.len() >= cap {
        // Keep the newest half when full.
        let half = cap / 2;
        trace.drain(..half);
    }
    trace.push(rec);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::SimTime;
    use fleetio_flash::addr::ChannelId;
    use fleetio_flash::config::FlashConfig;

    fn small_cfg() -> EngineConfig {
        EngineConfig {
            flash: FlashConfig::training_test(),
            ..Default::default()
        }
    }

    fn chans(range: std::ops::Range<u16>) -> Vec<ChannelId> {
        range.map(ChannelId).collect()
    }

    #[test]
    fn open_loop_tenant_produces_window_traffic() {
        let spec = TenantSpec::new(
            VssdConfig::hardware(VssdId(0), chans(0..2)),
            WorkloadKind::Ycsb,
            1,
        );
        let mut c = Colocation::new(small_cfg(), vec![spec], SimDuration::from_secs(2));
        let out = c.run_window();
        assert_eq!(out.len(), 1);
        let (id, w) = &out[0];
        assert_eq!(*id, VssdId(0));
        // YCSB at ~4000 req/s → thousands of ops in 2 s.
        assert!(w.total_ops > 4000, "ops {}", w.total_ops);
        assert!(w.read_ratio > 0.9, "read ratio {}", w.read_ratio);
        assert!(!c.trace_of(VssdId(0)).is_empty());
    }

    #[test]
    fn closed_loop_tenant_saturates_its_channels() {
        let spec = TenantSpec::new(
            VssdConfig::hardware(VssdId(0), chans(0..2)),
            WorkloadKind::TeraSort,
            2,
        );
        let mut c = Colocation::new(small_cfg(), vec![spec], SimDuration::from_secs(2));
        // Skip into the read phase.
        let out = c.run_window();
        let (_, w) = &out[0];
        // 2 channels × 64 MiB/s peak ≈ 134 MB/s; a concurrency-24 closed
        // loop should land well above half of that during its phases.
        assert!(w.avg_bandwidth > 4.0e7, "bandwidth {}", w.avg_bandwidth);
    }

    #[test]
    fn closed_loop_bandwidth_scales_with_channels() {
        let run = |n_ch: u16| {
            let spec = TenantSpec::new(
                VssdConfig::hardware(VssdId(0), chans(0..n_ch)),
                WorkloadKind::MlPrep,
                3,
            );
            let mut c = Colocation::new(small_cfg(), vec![spec], SimDuration::from_secs(2));
            let mut bw = 0.0;
            for _ in 0..3 {
                let out = c.run_window();
                bw += out[0].1.avg_bandwidth;
            }
            bw / 3.0
        };
        let two = run(2);
        let four = run(4);
        assert!(four > two * 1.5, "no scaling: 2ch {two}, 4ch {four}");
    }

    #[test]
    fn two_tenants_are_isolated_on_hardware() {
        let tenants = vec![
            TenantSpec::new(
                VssdConfig::hardware(VssdId(0), chans(0..2)),
                WorkloadKind::Ycsb,
                4,
            ),
            TenantSpec::new(
                VssdConfig::hardware(VssdId(1), chans(2..4)),
                WorkloadKind::TeraSort,
                5,
            ),
        ];
        let mut c = Colocation::new(small_cfg(), tenants, SimDuration::from_secs(2));
        let out = c.run_window();
        assert_eq!(out.len(), 2);
        assert!(out[0].1.total_ops > 0);
        assert!(out[1].1.total_ops > 0);
    }

    #[test]
    fn swap_workload_changes_stream() {
        let spec = TenantSpec::new(
            VssdConfig::hardware(VssdId(0), chans(0..2)),
            WorkloadKind::Ycsb,
            6,
        );
        let mut c = Colocation::new(small_cfg(), vec![spec], SimDuration::from_secs(1));
        c.run_window();
        assert_eq!(c.kind_of(VssdId(0)), WorkloadKind::Ycsb);
        c.swap_workload(VssdId(0), WorkloadKind::VdiWeb, 7);
        assert_eq!(c.kind_of(VssdId(0)), WorkloadKind::VdiWeb);
        let out = c.run_window();
        assert!(out[0].1.total_ops > 0);
    }

    #[test]
    fn warm_up_runs_without_time_passing() {
        let spec = TenantSpec::new(
            VssdConfig::hardware(VssdId(0), chans(0..2)),
            WorkloadKind::Ycsb,
            8,
        );
        let mut c = Colocation::new(small_cfg(), vec![spec], SimDuration::from_secs(1));
        c.warm_up(0.5);
        assert_eq!(c.engine().now(), SimTime::ZERO);
    }

    #[test]
    fn windows_partition_time() {
        let spec = TenantSpec::new(
            VssdConfig::hardware(VssdId(0), chans(0..2)),
            WorkloadKind::Tpce,
            9,
        );
        let mut c = Colocation::new(small_cfg(), vec![spec], SimDuration::from_secs(2));
        c.run_windows(3);
        assert_eq!(c.engine().now(), SimTime::from_secs(6));
    }
}
