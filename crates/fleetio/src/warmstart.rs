//! Registry warm-start: model selection at vSSD attach time (§3.7).
//!
//! The paper keeps one pre-trained model per workload type and picks the
//! right one when a vSSD attaches: classify the tenant's recent I/O
//! windows with the §3.4 typing model, then load the checkpoint filed
//! under that type. This module is the glue between `fleetio`'s typing
//! machinery and the `fleetio-model` registry:
//!
//! * [`type_tag`] / [`tag_type`] — the canonical registry tags for the
//!   Figure 6 workload types (`lc1`, `lc2`, `bi`),
//! * [`typing_index`] / [`typing_model_from_index`] — lossless
//!   conversion between a fitted [`TypingModel`] and the serializable
//!   [`TypingIndex`] the registry stores,
//! * [`checkpoint_from_trainer`] — wraps a (pre-)trained `PpoTrainer`
//!   as a tagged [`ModelCheckpoint`],
//! * [`agent_from_checkpoint`] — loads a checkpoint (falling back to
//!   `last_good` when the current file is corrupt) and instantiates a
//!   frozen deployment [`FleetIoAgent`] from it,
//! * [`warm_start`] — the full attach path: classify → select tag →
//!   load agent; `Ok(None)` means the workload fits no learned cluster
//!   and the caller should fall back to the unified model or train from
//!   scratch.

use fleetio_ml::{KMeans, StandardScaler};
use fleetio_model::codec::DecodeError;
use fleetio_model::{CheckpointMeta, ModelCheckpoint, ModelRegistry, RegistryError, TypingIndex};
use fleetio_rl::PpoTrainer;
use fleetio_workloads::WindowFeatures;

use crate::agent::{FleetIoAgent, PretrainedModel};
use crate::typing::{log_features, TypingModel, WorkloadType};

/// The registry tag for a workload type.
pub fn type_tag(t: WorkloadType) -> &'static str {
    match t {
        WorkloadType::Lc1 => "lc1",
        WorkloadType::Lc2 => "lc2",
        WorkloadType::Bi => "bi",
    }
}

/// Parses a registry tag back to a workload type.
pub fn tag_type(tag: &str) -> Option<WorkloadType> {
    match tag {
        "lc1" => Some(WorkloadType::Lc1),
        "lc2" => Some(WorkloadType::Lc2),
        "bi" => Some(WorkloadType::Bi),
        _ => None,
    }
}

/// Converts a fitted typing model into the serializable registry index.
pub fn typing_index(model: &TypingModel) -> TypingIndex {
    TypingIndex {
        scaler_mean: model.scaler().mean().to_vec(),
        scaler_std: model.scaler().std().to_vec(),
        centroids: model.kmeans().centroids().to_vec(),
        cluster_tags: model
            .cluster_types()
            .iter()
            .map(|t| type_tag(*t).to_string())
            .collect(),
        unknown_distance: model.unknown_distance(),
    }
}

/// Rebuilds a typing model from a registry index. `test_accuracy` is not
/// part of the index (it describes the original fit, not the model), so
/// the caller supplies it — pass 1.0 when unknown.
///
/// # Errors
///
/// Returns a message when the index carries an unknown cluster tag or
/// structurally inconsistent parts.
pub fn typing_model_from_index(
    index: &TypingIndex,
    test_accuracy: f64,
) -> Result<TypingModel, String> {
    let scaler = StandardScaler::from_params(index.scaler_mean.clone(), index.scaler_std.clone())?;
    let kmeans = KMeans::from_centroids(index.centroids.clone())?;
    let types = index
        .cluster_tags
        .iter()
        .map(|t| tag_type(t).ok_or_else(|| format!("unknown cluster tag {t:?}")))
        .collect::<Result<Vec<_>, _>>()?;
    TypingModel::from_parts(scaler, kmeans, types, test_accuracy, index.unknown_distance)
}

/// Wraps a trainer state as a checkpoint tagged for the registry.
pub fn checkpoint_from_trainer(trainer: &PpoTrainer, seed: u64, tag: &str) -> ModelCheckpoint {
    ModelCheckpoint {
        meta: CheckpointMeta {
            seed,
            tag: tag.to_string(),
        },
        trainer: trainer.export_state(),
    }
}

/// Classifies a feature window through the registry's stored typing
/// index, returning the tag to warm-start from (`None` = unknown
/// workload).
///
/// # Errors
///
/// Missing or corrupt typing index.
pub fn classify_tag(
    registry: &ModelRegistry,
    features: &WindowFeatures,
) -> Result<Option<String>, RegistryError> {
    registry.select(&log_features(features))
}

/// Loads the checkpoint for `tag` (with `last_good` fallback) and builds
/// a frozen deployment agent from it. The second return is whether the
/// fallback fired.
///
/// # Errors
///
/// No usable checkpoint under `tag`, or a checkpoint whose components
/// fail `PpoTrainer::from_state` cross-validation.
pub fn agent_from_checkpoint(
    registry: &ModelRegistry,
    tag: &str,
    history_windows: usize,
) -> Result<(FleetIoAgent, bool), RegistryError> {
    let (model, fell_back) = model_from_checkpoint(registry, tag)?;
    Ok((FleetIoAgent::new(&model, history_windows), fell_back))
}

/// Loads the checkpoint for `tag` (with `last_good` fallback) as a
/// frozen [`PretrainedModel`]. The second return is whether the
/// fallback fired. This is [`agent_from_checkpoint`] without the
/// per-vSSD history wrapper — the form fleet-level callers need when
/// they batch many tenants' inferences through one matrix pass and
/// keep per-tenant histories outside the agent.
///
/// # Errors
///
/// No usable checkpoint under `tag`, or a checkpoint whose components
/// fail `PpoTrainer::from_state` cross-validation.
pub fn model_from_checkpoint(
    registry: &ModelRegistry,
    tag: &str,
) -> Result<(PretrainedModel, bool), RegistryError> {
    let (ckpt, fell_back) = registry.load_model_or_last_good(tag)?;
    let trainer = PpoTrainer::from_state(ckpt.trainer).map_err(|msg| RegistryError::Corrupt {
        path: registry.model_path(tag),
        error: DecodeError::Malformed(msg),
    })?;
    let mut normalizer = trainer.normalizer;
    normalizer.freeze();
    Ok((
        PretrainedModel {
            policy: trainer.policy,
            normalizer,
        },
        fell_back,
    ))
}

/// The full vSSD-attach warm-start path: classify `features` via the
/// stored typing index, then load the matching checkpoint as a frozen
/// agent. Returns `Ok(None)` for unknown workloads (caller falls back to
/// the unified model / from-scratch training) and the tag + agent +
/// fallback flag otherwise.
///
/// # Errors
///
/// Missing/corrupt typing index, or a selected tag with no usable
/// checkpoint.
pub fn warm_start(
    registry: &ModelRegistry,
    features: &WindowFeatures,
    history_windows: usize,
) -> Result<Option<(String, FleetIoAgent, bool)>, RegistryError> {
    let Some(tag) = classify_tag(registry, features)? else {
        return Ok(None);
    };
    let (agent, fell_back) = agent_from_checkpoint(registry, &tag, history_windows)?;
    Ok(Some((tag, agent, fell_back)))
}

/// [`warm_start`] in model form: classify `features`, then load the
/// matching checkpoint as frozen weights via [`model_from_checkpoint`].
///
/// # Errors
///
/// Missing/corrupt typing index, or a selected tag with no usable
/// checkpoint.
pub fn warm_start_model(
    registry: &ModelRegistry,
    features: &WindowFeatures,
) -> Result<Option<(String, PretrainedModel, bool)>, RegistryError> {
    let Some(tag) = classify_tag(registry, features)? else {
        return Ok(None);
    };
    let (model, fell_back) = model_from_checkpoint(registry, &tag)?;
    Ok(Some((tag, model, fell_back)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::states::StateVector;
    use fleetio_workloads::WorkloadKind;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fleetio-warmstart").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn feat(read_bw: f64, write_bw: f64, entropy: f64, size: f64) -> WindowFeatures {
        WindowFeatures {
            read_bw,
            write_bw,
            lpa_entropy: entropy,
            avg_io_size: size,
        }
    }

    /// Synthetic feature windows mirroring the typing tests: BI has high
    /// bandwidth and large I/O, LC-2 low entropy, LC-1 the rest.
    fn samples() -> Vec<(WorkloadKind, WindowFeatures)> {
        let mut out = Vec::new();
        for i in 0..20 {
            let j = i as f64;
            out.push((
                WorkloadKind::TeraSort,
                feat(3e8 + j * 1e6, 2e8, 7.5 + 0.01 * j, 1e6),
            ));
            out.push((WorkloadKind::VdiWeb, feat(2e7, 8e6, 6.5 + 0.01 * j, 16e3)));
            out.push((WorkloadKind::Ycsb, feat(2.5e7, 1e6, 2.0 + 0.01 * j, 6e3)));
        }
        out
    }

    #[test]
    fn tags_roundtrip() {
        for t in [WorkloadType::Lc1, WorkloadType::Lc2, WorkloadType::Bi] {
            assert_eq!(tag_type(type_tag(t)), Some(t));
        }
        assert_eq!(tag_type("mystery"), None);
    }

    #[test]
    fn typing_model_survives_index_roundtrip() {
        let model = TypingModel::fit(&samples(), 7);
        let index = typing_index(&model);
        let back =
            typing_model_from_index(&index, model.test_accuracy()).expect("index converts back");
        // Same classifications on representative windows.
        for f in [
            feat(3e8, 2e8, 7.6, 1e6),
            feat(2e7, 8e6, 6.6, 16e3),
            feat(2.5e7, 1e6, 2.1, 6e3),
            feat(9e9, 9e9, 0.0, 64e6), // unknown
        ] {
            assert_eq!(model.classify(f), back.classify(f));
        }
        assert_eq!(back.test_accuracy(), model.test_accuracy());
    }

    #[test]
    fn index_with_bad_tag_rejected() {
        let model = TypingModel::fit(&samples(), 7);
        let mut index = typing_index(&model);
        index.cluster_tags[0] = "nope".to_string();
        assert!(typing_model_from_index(&index, 1.0).is_err());
    }

    #[test]
    fn registry_select_agrees_with_typing_model() {
        let model = TypingModel::fit(&samples(), 7);
        let registry = ModelRegistry::open(scratch("select_agrees")).expect("registry opens");
        registry
            .save_typing(&typing_index(&model))
            .expect("typing saves");
        for f in [
            feat(3e8, 2e8, 7.6, 1e6),
            feat(2.5e7, 1e6, 2.1, 6e3),
            feat(9e9, 9e9, 0.0, 64e6),
        ] {
            let expected = model.classify(f).map(|t| type_tag(t).to_string());
            assert_eq!(
                classify_tag(&registry, &f).expect("classify succeeds"),
                expected
            );
        }
    }

    #[test]
    fn warm_start_loads_matching_agent() {
        use crate::agent::{pretrain_trainer, PretrainOptions};
        use crate::config::FleetIoConfig;
        use crate::driver::TenantSpec;
        use fleetio_des::SimDuration;
        use fleetio_flash::addr::ChannelId;
        use fleetio_flash::config::FlashConfig;
        use fleetio_vssd::vssd::{VssdConfig, VssdId};

        let mut cfg = FleetIoConfig::default();
        cfg.engine.flash = FlashConfig::training_test();
        cfg.decision_interval = SimDuration::from_millis(250);
        let scenario = vec![
            TenantSpec::new(
                VssdConfig::hardware(VssdId(0), vec![ChannelId(0), ChannelId(1)])
                    .with_slo(SimDuration::from_millis(2)),
                WorkloadKind::Tpce,
                1,
            ),
            TenantSpec::new(
                VssdConfig::hardware(VssdId(1), vec![ChannelId(2), ChannelId(3)]),
                WorkloadKind::BatchAnalytics,
                2,
            ),
        ];
        let opts = PretrainOptions {
            iterations: 2,
            windows_per_rollout: 4,
            warmup_iterations: 1,
            parallel: false,
            lr_override: None,
            bc_rounds: 0,
            bc_epsilon: 0.0,
            progress: None,
        };
        let trainer = pretrain_trainer(&cfg, &[scenario], 0.0, opts, 21);

        let registry = ModelRegistry::open(scratch("warm_start")).expect("registry opens");
        registry
            .save_typing(&typing_index(&TypingModel::fit(&samples(), 7)))
            .expect("typing saves");
        registry
            .save_model(&checkpoint_from_trainer(&trainer, 21, "bi"))
            .expect("model saves");

        // A BI-looking window selects the "bi" model and loads it.
        let (tag, mut agent, fell_back) =
            warm_start(&registry, &feat(3e8, 2e8, 7.6, 1e6), cfg.history_windows)
                .expect("warm start succeeds")
                .expect("window classifies");
        assert_eq!(tag, "bi");
        assert!(!fell_back);
        // The loaded agent behaves identically to one built directly from
        // the trainer's weights.
        let mut trainer = trainer;
        trainer.normalizer.freeze();
        let direct = PretrainedModel {
            policy: trainer.policy.clone(),
            normalizer: trainer.normalizer.clone(),
        };
        let mut direct_agent = FleetIoAgent::new(&direct, cfg.history_windows);
        let state = StateVector::zero();
        assert_eq!(agent.decide(state), direct_agent.decide(state));

        // An unknown window warm-starts nothing.
        assert!(
            warm_start(&registry, &feat(9e9, 9e9, 0.0, 64e6), cfg.history_windows)
                .expect("warm start succeeds")
                .is_none()
        );
        // A known window whose tag has no checkpoint errors.
        assert!(matches!(
            warm_start(&registry, &feat(2.5e7, 1e6, 2.1, 6e3), cfg.history_windows),
            Err(RegistryError::Missing(_))
        ));
    }
}
