//! RL actions (Table 2 of the paper) and their discretization.
//!
//! Each agent emits three decisions per window: how much bandwidth to
//! harvest, how much to make harvestable (both in whole channels of
//! bandwidth, since the gSB manager converts `gsb_bw` to `n_chls` by
//! dividing by the per-channel bandwidth, §3.6), and the I/O priority.

use fleetio_vssd::admission::HarvestAction;
use fleetio_vssd::request::Priority;
use fleetio_vssd::vssd::VssdId;

/// One agent's decision for a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentAction {
    /// `Harvest(gsb_bw)` target, in channels of bandwidth.
    pub harvest_channels: usize,
    /// `Make_Harvestable(gsb_bw)` target, in channels of bandwidth.
    pub harvestable_channels: usize,
    /// `Set_Priority(level)`.
    pub priority: Priority,
}

impl AgentAction {
    /// Decodes the multi-discrete head indices produced by the policy.
    ///
    /// # Panics
    ///
    /// Panics unless exactly three heads are given and the priority index
    /// is below 3.
    pub fn from_heads(heads: &[usize]) -> Self {
        assert_eq!(
            heads.len(),
            3,
            "expected [harvest, make_harvestable, priority]"
        );
        let priority = match heads[2] {
            0 => Priority::Low,
            1 => Priority::Medium,
            2 => Priority::High,
            other => panic!("priority head out of range: {other}"),
        };
        AgentAction {
            harvest_channels: heads[0],
            harvestable_channels: heads[1],
            priority,
        }
    }

    /// Encodes back into head indices (inverse of
    /// [`AgentAction::from_heads`]).
    pub fn to_heads(self) -> [usize; 3] {
        let p = match self.priority {
            Priority::Low => 0,
            Priority::Medium => 1,
            Priority::High => 2,
        };
        [self.harvest_channels, self.harvestable_channels, p]
    }

    /// The `Harvest` admission action for this decision, with `gsb_bw`
    /// expressed in bytes/second given the per-channel bandwidth.
    pub fn harvest_action(self, vssd: VssdId, channel_bw: f64) -> HarvestAction {
        HarvestAction::Harvest {
            vssd,
            bytes_per_sec: self.harvest_channels as f64 * channel_bw,
        }
    }

    /// The `Make_Harvestable` admission action for this decision.
    pub fn make_harvestable_action(self, vssd: VssdId, channel_bw: f64) -> HarvestAction {
        HarvestAction::MakeHarvestable {
            vssd,
            bytes_per_sec: self.harvestable_channels as f64 * channel_bw,
        }
    }

    /// A no-op action (no harvesting, medium priority).
    pub fn idle() -> Self {
        AgentAction {
            harvest_channels: 0,
            harvestable_channels: 0,
            priority: Priority::Medium,
        }
    }
}

impl Default for AgentAction {
    fn default() -> Self {
        Self::idle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_roundtrip() {
        let a = AgentAction {
            harvest_channels: 3,
            harvestable_channels: 1,
            priority: Priority::High,
        };
        assert_eq!(AgentAction::from_heads(&a.to_heads()), a);
    }

    #[test]
    fn priority_decoding() {
        assert_eq!(AgentAction::from_heads(&[0, 0, 0]).priority, Priority::Low);
        assert_eq!(
            AgentAction::from_heads(&[0, 0, 1]).priority,
            Priority::Medium
        );
        assert_eq!(AgentAction::from_heads(&[0, 0, 2]).priority, Priority::High);
    }

    #[test]
    fn admission_actions_scale_by_channel_bandwidth() {
        let a = AgentAction {
            harvest_channels: 2,
            harvestable_channels: 4,
            priority: Priority::Medium,
        };
        let ch_bw = 64.0 * 1024.0 * 1024.0;
        match a.harvest_action(VssdId(7), ch_bw) {
            HarvestAction::Harvest {
                vssd,
                bytes_per_sec,
            } => {
                assert_eq!(vssd, VssdId(7));
                assert_eq!(bytes_per_sec, 2.0 * ch_bw);
            }
            other => panic!("wrong action {other:?}"),
        }
        match a.make_harvestable_action(VssdId(7), ch_bw) {
            HarvestAction::MakeHarvestable { bytes_per_sec, .. } => {
                assert_eq!(bytes_per_sec, 4.0 * ch_bw);
            }
            other => panic!("wrong action {other:?}"),
        }
    }

    #[test]
    fn idle_is_default() {
        assert_eq!(AgentAction::default(), AgentAction::idle());
        assert_eq!(AgentAction::idle().harvest_channels, 0);
    }

    #[test]
    #[should_panic(expected = "priority head out of range")]
    fn bad_priority_head_panics() {
        let _ = AgentAction::from_heads(&[0, 0, 9]);
    }
}
