//! Workload typing: clustering I/O trace windows and fine-tuning α (§3.4).
//!
//! FleetIO collects block traces at runtime, splits them into 10 K-request
//! windows, extracts four features per window (read/write bandwidth, LPA
//! entropy, average I/O size), and clusters the windows with k-means. Each
//! cluster maps to a workload type (LC-1, LC-2, BI in Figure 6) with a
//! fine-tuned reward coefficient α; windows too far from every centroid
//! fall back to the unified reward and are queued for offline tuning.

use fleetio_des::rng::SmallRng;
use fleetio_ml::{KMeans, StandardScaler};
use fleetio_workloads::{WindowFeatures, WorkloadCategory, WorkloadKind};

use crate::config::FleetIoConfig;

/// The workload types of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadType {
    /// Latency-sensitive cluster 1 (VDI-Web, TPC-E, SearchEngine,
    /// LiveMaps).
    Lc1,
    /// Latency-sensitive cluster 2 (YCSB-B: zipfian low-entropy locality).
    Lc2,
    /// Bandwidth-intensive cluster (TeraSort, ML Prep, PageRank, Batch
    /// Analytics).
    Bi,
}

/// Ground-truth type of a named workload, per Figure 6.
pub fn canonical_type(kind: WorkloadKind) -> WorkloadType {
    match kind {
        WorkloadKind::Ycsb => WorkloadType::Lc2,
        k if k.category() == WorkloadCategory::BandwidthIntensive => WorkloadType::Bi,
        _ => WorkloadType::Lc1,
    }
}

/// The fine-tuned α for a known workload type (§3.8 values).
pub fn alpha_for_type(cfg: &FleetIoConfig, t: WorkloadType) -> f64 {
    match t {
        WorkloadType::Lc1 => cfg.alpha_lc1,
        WorkloadType::Lc2 => cfg.alpha_lc2,
        WorkloadType::Bi => cfg.alpha_bi,
    }
}

/// The fine-tuned α for a named workload (via its canonical type).
pub fn alpha_for_kind(cfg: &FleetIoConfig, kind: WorkloadKind) -> f64 {
    alpha_for_type(cfg, canonical_type(kind))
}

/// Coarse α by category (used when only the category is known).
pub fn alpha_for_category(cfg: &FleetIoConfig, category: WorkloadCategory) -> f64 {
    match category {
        WorkloadCategory::BandwidthIntensive => cfg.alpha_bi,
        WorkloadCategory::LatencySensitive => cfg.alpha_lc1,
    }
}

/// Feature transform applied before standardization: bandwidths and sizes
/// span orders of magnitude across workload classes, so they enter the
/// clustering in log space (entropy is already a log quantity). Without
/// this, k-means spends its clusters subdividing the high-variance
/// bandwidth-intensive windows instead of separating YCSB's low-entropy
/// cluster.
pub fn log_features(f: &WindowFeatures) -> Vec<f64> {
    vec![
        (1.0 + f.read_bw).ln(),
        (1.0 + f.write_bw).ln(),
        f.lpa_entropy,
        (1.0 + f.avg_io_size).ln(),
    ]
}

/// A fitted workload-typing model.
#[derive(Debug, Clone)]
pub struct TypingModel {
    scaler: StandardScaler,
    kmeans: KMeans,
    cluster_type: Vec<WorkloadType>,
    test_accuracy: f64,
    unknown_distance: f64,
}

impl TypingModel {
    /// Fits the model on labelled feature windows with a 70/30 train/test
    /// split (as §3.4), k = 3 clusters.
    ///
    /// # Panics
    ///
    /// Panics with fewer than 6 samples or fewer than all three types
    /// represented.
    pub fn fit(samples: &[(WorkloadKind, WindowFeatures)], seed: u64) -> TypingModel {
        assert!(samples.len() >= 6, "need at least 6 feature windows");
        let mut rng = SmallRng::seed_from_u64(seed);
        let labels: Vec<WorkloadType> = samples.iter().map(|(k, _)| canonical_type(*k)).collect();
        for t in [WorkloadType::Lc1, WorkloadType::Lc2, WorkloadType::Bi] {
            assert!(labels.contains(&t), "missing samples for {t:?}");
        }
        let raw: Vec<Vec<f64>> = samples.iter().map(|(_, f)| log_features(f)).collect();
        let scaler = StandardScaler::fit(&raw);
        let scaled = scaler.transform_all(&raw);

        let (train_idx, test_idx) =
            fleetio_ml::dataset::train_test_split(scaled.len(), 0.7, &mut rng);
        let train: Vec<Vec<f64>> = train_idx.iter().map(|&i| scaled[i].clone()).collect();
        let kmeans = KMeans::fit_restarts(&train, 3, 100, 10, &mut rng);

        // Assign each cluster the majority ground-truth type of its
        // training members.
        let mut votes = [[0usize; 3]; 3];
        for &i in &train_idx {
            let c = kmeans.predict(&scaled[i]);
            let t = match labels[i] {
                WorkloadType::Lc1 => 0,
                WorkloadType::Lc2 => 1,
                WorkloadType::Bi => 2,
            };
            votes[c][t] += 1;
        }
        let cluster_type: Vec<WorkloadType> = votes
            .iter()
            .map(|v| {
                let best = v
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, n)| **n)
                    .expect("3 types")
                    .0;
                [WorkloadType::Lc1, WorkloadType::Lc2, WorkloadType::Bi][best]
            })
            .collect();

        // Unknown threshold: generous multiple of the worst training
        // distance, so in-distribution windows always classify.
        let max_train_dist = train
            .iter()
            .map(|p| kmeans.distance_to_nearest(p))
            .fold(0.0f64, f64::max);
        let unknown_distance = (max_train_dist * 4.0).max(1e-6);

        // Test accuracy: fraction of held-out windows whose cluster's type
        // matches their ground truth (the paper reports 98.4 %).
        let correct = test_idx
            .iter()
            .filter(|&&i| {
                let c = kmeans.predict(&scaled[i]);
                cluster_type[c] == labels[i]
            })
            .count();
        let test_accuracy = if test_idx.is_empty() {
            1.0
        } else {
            correct as f64 / test_idx.len() as f64
        };

        TypingModel {
            scaler,
            kmeans,
            cluster_type,
            test_accuracy,
            unknown_distance,
        }
    }

    /// Classifies one feature window; `None` means the window does not fit
    /// any learned cluster (→ unified reward + offline tuning queue).
    pub fn classify(&self, features: WindowFeatures) -> Option<WorkloadType> {
        let scaled = self.scaler.transform(&log_features(&features));
        if self.kmeans.distance_to_nearest(&scaled) > self.unknown_distance {
            return None;
        }
        Some(self.cluster_type[self.kmeans.predict(&scaled)])
    }

    /// The α this model selects for a window (unified when unknown).
    pub fn alpha(&self, cfg: &FleetIoConfig, features: WindowFeatures) -> f64 {
        match self.classify(features) {
            Some(t) => alpha_for_type(cfg, t),
            None => cfg.unified_alpha,
        }
    }

    /// Rebuilds a typing model from its serialized parts (registry
    /// warm-start path; see `fleetio-model`'s `TypingIndex`).
    ///
    /// # Errors
    ///
    /// Returns a message when the parts are mutually inconsistent:
    /// centroid dimensionality differing from the scaler's, a
    /// cluster-type list of the wrong length, or out-of-range scalars.
    pub fn from_parts(
        scaler: StandardScaler,
        kmeans: KMeans,
        cluster_type: Vec<WorkloadType>,
        test_accuracy: f64,
        unknown_distance: f64,
    ) -> Result<TypingModel, String> {
        let dim = scaler.mean().len();
        let centroids = kmeans.centroids();
        if centroids.iter().any(|c| c.len() != dim) {
            return Err(format!(
                "centroid dimensionality disagrees with scaler ({dim} features)"
            ));
        }
        if cluster_type.len() != centroids.len() {
            return Err(format!(
                "{} centroids but {} cluster types",
                centroids.len(),
                cluster_type.len()
            ));
        }
        if !(0.0..=1.0).contains(&test_accuracy) {
            return Err(format!("test accuracy {test_accuracy} outside [0, 1]"));
        }
        if !(unknown_distance.is_finite() && unknown_distance > 0.0) {
            return Err("unknown_distance must be positive and finite".to_string());
        }
        Ok(TypingModel {
            scaler,
            kmeans,
            cluster_type,
            test_accuracy,
            unknown_distance,
        })
    }

    /// The fitted feature scaler.
    pub fn scaler(&self) -> &StandardScaler {
        &self.scaler
    }

    /// The fitted k-means model.
    pub fn kmeans(&self) -> &KMeans {
        &self.kmeans
    }

    /// Majority workload type per cluster (same order as
    /// [`TypingModel::centroids`]).
    pub fn cluster_types(&self) -> &[WorkloadType] {
        &self.cluster_type
    }

    /// Distance beyond which a window is declared unknown.
    pub fn unknown_distance(&self) -> f64 {
        self.unknown_distance
    }

    /// Held-out classification accuracy from fitting.
    pub fn test_accuracy(&self) -> f64 {
        self.test_accuracy
    }

    /// The cluster centers in scaled feature space (for Figure 6 PCA
    /// plots).
    pub fn centroids(&self) -> &[Vec<f64>] {
        self.kmeans.centroids()
    }

    /// Projects labelled samples to scaled feature space (for PCA).
    pub fn scaled_features(&self, samples: &[(WorkloadKind, WindowFeatures)]) -> Vec<Vec<f64>> {
        samples
            .iter()
            .map(|(_, f)| self.scaler.transform(&log_features(f)))
            .collect()
    }
}

/// Binary-searches the largest α meeting the SLO-violation ceiling while
/// maximizing bandwidth (§3.4). `evaluate` maps a candidate α to the
/// measured `(violation_fraction, bandwidth)`; violations are assumed to
/// decrease as α grows. Returns the chosen α.
///
/// # Panics
///
/// Panics unless `lo < hi` and `iters > 0`.
pub fn binary_search_alpha(
    lo: f64,
    hi: f64,
    iters: usize,
    threshold: f64,
    mut evaluate: impl FnMut(f64) -> (f64, f64),
) -> f64 {
    assert!(lo < hi, "invalid search range");
    assert!(iters > 0, "need at least one iteration");
    let (mut lo, mut hi) = (lo, hi);
    // Smaller α favours bandwidth; find the smallest α whose violations
    // stay under the threshold.
    let mut best = hi;
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        let (vio, _bw) = evaluate(mid);
        if vio <= threshold {
            best = mid;
            hi = mid; // try smaller α for more bandwidth
        } else {
            lo = mid; // need stronger isolation
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(read_bw: f64, write_bw: f64, entropy: f64, size: f64) -> WindowFeatures {
        WindowFeatures {
            read_bw,
            write_bw,
            lpa_entropy: entropy,
            avg_io_size: size,
        }
    }

    /// Synthetic but structurally faithful feature windows: BI has high
    /// bandwidth and large I/O, LC-2 has low entropy, LC-1 is the rest.
    fn samples() -> Vec<(WorkloadKind, WindowFeatures)> {
        let mut out = Vec::new();
        for i in 0..20 {
            let j = i as f64;
            out.push((
                WorkloadKind::TeraSort,
                feat(3e8 + j * 1e6, 2e8, 7.5 + 0.01 * j, 1e6),
            ));
            out.push((WorkloadKind::VdiWeb, feat(2e7, 8e6, 6.5 + 0.01 * j, 16e3)));
            out.push((WorkloadKind::Ycsb, feat(2.5e7, 1e6, 2.0 + 0.01 * j, 6e3)));
        }
        out
    }

    #[test]
    fn fit_separates_the_three_types() {
        let model = TypingModel::fit(&samples(), 7);
        assert!(
            model.test_accuracy() > 0.95,
            "accuracy {}",
            model.test_accuracy()
        );
        assert_eq!(
            model.classify(feat(3e8, 2e8, 7.6, 1e6)),
            Some(WorkloadType::Bi)
        );
        assert_eq!(
            model.classify(feat(2e7, 8e6, 6.6, 16e3)),
            Some(WorkloadType::Lc1)
        );
        assert_eq!(
            model.classify(feat(2.5e7, 1e6, 2.1, 6e3)),
            Some(WorkloadType::Lc2)
        );
    }

    #[test]
    fn far_away_windows_are_unknown() {
        let model = TypingModel::fit(&samples(), 7);
        let weird = feat(9e9, 9e9, 0.0, 64e6);
        assert_eq!(model.classify(weird), None);
        let cfg = FleetIoConfig::default();
        assert_eq!(model.alpha(&cfg, weird), cfg.unified_alpha);
    }

    #[test]
    fn alpha_selection_follows_type() {
        let cfg = FleetIoConfig::default();
        let model = TypingModel::fit(&samples(), 7);
        assert_eq!(model.alpha(&cfg, feat(3e8, 2e8, 7.6, 1e6)), cfg.alpha_bi);
        assert_eq!(model.alpha(&cfg, feat(2.5e7, 1e6, 2.1, 6e3)), cfg.alpha_lc2);
    }

    #[test]
    fn canonical_types_match_figure_6() {
        assert_eq!(canonical_type(WorkloadKind::Ycsb), WorkloadType::Lc2);
        assert_eq!(canonical_type(WorkloadKind::VdiWeb), WorkloadType::Lc1);
        assert_eq!(canonical_type(WorkloadKind::Tpce), WorkloadType::Lc1);
        assert_eq!(
            canonical_type(WorkloadKind::SearchEngine),
            WorkloadType::Lc1
        );
        assert_eq!(canonical_type(WorkloadKind::LiveMaps), WorkloadType::Lc1);
        assert_eq!(canonical_type(WorkloadKind::TeraSort), WorkloadType::Bi);
        assert_eq!(canonical_type(WorkloadKind::PageRank), WorkloadType::Bi);
        assert_eq!(canonical_type(WorkloadKind::MlPrep), WorkloadType::Bi);
    }

    #[test]
    fn binary_search_finds_threshold_alpha() {
        // Violations fall linearly with α: vio = 0.10 − α; threshold 5 %.
        let chosen = binary_search_alpha(0.0, 1.0, 20, 0.05, |a| (0.10 - a, 1.0 - a));
        assert!((chosen - 0.05).abs() < 1e-3, "chose {chosen}");
    }

    #[test]
    fn binary_search_with_always_safe_eval_goes_small() {
        let chosen = binary_search_alpha(0.0, 1.0, 20, 0.05, |_| (0.0, 1.0));
        assert!(chosen < 1e-3, "chose {chosen}");
    }

    #[test]
    #[should_panic(expected = "missing samples")]
    fn fit_requires_all_types() {
        let s: Vec<_> = (0..10)
            .map(|_| (WorkloadKind::Ycsb, feat(1e7, 1e6, 2.0, 4e3)))
            .collect();
        let _ = TypingModel::fit(&s, 0);
    }
}
