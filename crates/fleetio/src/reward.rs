//! Reward functions (Equations 1 and 2 of the paper).
//!
//! Equation 1 rewards a vSSD for utilizing its guaranteed bandwidth while
//! penalizing SLO violations relative to the provider's guarantee:
//!
//! `R = (1 − α) · Avg_BW / BW_guar − α · SLO_Vio / SLO_Vio_guar`
//!
//! The trade-off coefficient α is fine-tuned per workload type (§3.4);
//! Equation 2's mixing across agents lives in
//! [`fleetio_rl::reward::mix_rewards`].

/// Parameters of the per-vSSD reward (Equation 1).
///
/// # Example
///
/// ```
/// use fleetio::RewardParams;
///
/// // 8 channels at 64 MiB/s, 1 % violation guarantee, LC-1's α.
/// let p = RewardParams::new(2.5e-2, 8, 64.0 * 1024.0 * 1024.0, 0.01);
/// // Full guaranteed bandwidth with no violations scores ≈ 1 − α.
/// let r = p.reward(p.bw_guarantee, 0.0);
/// assert!((r - 0.975).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardParams {
    /// Trade-off coefficient α; small values prioritize utilization, large
    /// values prioritize isolation.
    pub alpha: f64,
    /// Guaranteed bandwidth of the vSSD's allocated resources,
    /// bytes/second (`N channels × bandwidth_per_channel`, §3.3.3).
    pub bw_guarantee: f64,
    /// Guaranteed SLO-violation fraction (paper default: 1 %).
    pub slo_vio_guarantee: f64,
}

impl RewardParams {
    /// Builds parameters for a vSSD with `channels` allocated channels.
    ///
    /// # Panics
    ///
    /// Panics unless every argument is positive/valid.
    pub fn new(alpha: f64, channels: usize, channel_bw: f64, slo_vio_guarantee: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        assert!(channels > 0, "channels must be positive");
        assert!(channel_bw > 0.0, "channel bandwidth must be positive");
        assert!(slo_vio_guarantee > 0.0, "SLO guarantee must be positive");
        RewardParams {
            alpha,
            bw_guarantee: channels as f64 * channel_bw,
            slo_vio_guarantee,
        }
    }

    /// Equation 1: the reward for one window.
    ///
    /// `avg_bw` is the measured bandwidth (bytes/second) and `slo_vio` the
    /// measured violation fraction in `[0, 1]`.
    pub fn reward(&self, avg_bw: f64, slo_vio: f64) -> f64 {
        (1.0 - self.alpha) * (avg_bw / self.bw_guarantee)
            - self.alpha * (slo_vio / self.slo_vio_guarantee)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CH_BW: f64 = 64.0 * 1024.0 * 1024.0;

    #[test]
    fn reward_rewards_bandwidth() {
        let p = RewardParams::new(0.0, 8, CH_BW, 0.01);
        // Full guaranteed bandwidth, no violations → 1.0.
        assert!((p.reward(8.0 * CH_BW, 0.0) - 1.0).abs() < 1e-12);
        // Harvested extra bandwidth can exceed 1.
        assert!(p.reward(12.0 * CH_BW, 0.0) > 1.0);
        // α = 0 ignores violations entirely.
        assert_eq!(p.reward(8.0 * CH_BW, 1.0), p.reward(8.0 * CH_BW, 0.0));
    }

    #[test]
    fn reward_penalizes_violations() {
        let p = RewardParams::new(0.025, 8, CH_BW, 0.01);
        let clean = p.reward(4.0 * CH_BW, 0.0);
        let dirty = p.reward(4.0 * CH_BW, 0.05);
        assert!(dirty < clean);
        // 5 % violations against a 1 % guarantee costs α × 5.
        assert!((clean - dirty - 0.025 * 5.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_trades_off_the_two_terms() {
        let lo = RewardParams::new(0.005, 8, CH_BW, 0.01);
        let hi = RewardParams::new(0.1, 8, CH_BW, 0.01);
        let bw = 6.0 * CH_BW;
        let vio = 0.03;
        // Higher α → same situation scores worse when violating.
        assert!(hi.reward(bw, vio) < lo.reward(bw, vio));
    }

    #[test]
    fn guarantee_scales_with_channels() {
        let p4 = RewardParams::new(0.01, 4, CH_BW, 0.01);
        let p8 = RewardParams::new(0.01, 8, CH_BW, 0.01);
        assert_eq!(p8.bw_guarantee, 2.0 * p4.bw_guarantee);
        // Same absolute bandwidth looks better against a smaller guarantee.
        assert!(p4.reward(2.0 * CH_BW, 0.0) > p8.reward(2.0 * CH_BW, 0.0));
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn bad_alpha_panics() {
        let _ = RewardParams::new(1.5, 8, CH_BW, 0.01);
    }
}
