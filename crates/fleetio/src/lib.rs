//! FleetIO: RL-based multi-tenant SSD virtualization (ASPLOS '25).
//!
//! This crate is the paper's primary contribution, built on the workspace
//! substrates:
//!
//! * [`config`] — Table 3 hyper-parameters and FleetIO defaults,
//! * [`states`] — Table 1 RL-state extraction with 3-window history,
//! * [`actions`] — Table 2 RL actions and their discretization,
//! * [`reward`] — Equations 1 (per-vSSD) and 2 (multi-agent mixing),
//! * [`driver`] — the collocation driver feeding open-loop and closed-loop
//!   workloads into the vSSD engine window by window,
//! * `env` — the RL environment over a collocation,
//! * [`typing`] — workload-type clustering and per-type α fine-tuning
//!   (§3.4, Figure 6),
//! * [`agent`] — per-vSSD deployment agents and offline pre-training,
//! * [`warmstart`] — registry-backed model selection at vSSD attach
//!   time (typing index + checkpoint loading via `fleetio-model`),
//! * [`runspec`] — serializable run descriptions the deterministic run
//!   store (`fleetio-store`) records and replays from,
//! * [`baselines`] — Hardware/Software Isolation, Adaptive, SSDKeeper and
//!   Mixed Isolation comparison policies (§4.1),
//! * [`experiment`] — the evaluation harness reproducing every figure,
//! * [`mixes`] — Table 5 scalability mixes.

pub mod actions;
pub mod agent;
pub mod baselines;
pub mod config;
pub mod driver;
pub mod env;
pub mod experiment;
pub mod mixes;
pub mod reward;
pub mod runspec;
pub mod states;
pub mod typing;
pub mod warmstart;

pub use actions::AgentAction;
pub use agent::{pretrain, pretrain_trainer, FleetIoAgent, PretrainedModel};
pub use config::FleetIoConfig;
pub use driver::{Colocation, TenantSpec};
pub use env::FleetIoEnv;
pub use reward::RewardParams;
pub use runspec::{FlashPreset, RunSpec};
pub use states::{StateHistory, StateVector};
