//! RL state extraction (Table 1 of the paper, plus the two shared states).
//!
//! Each 2-second window yields 11 raw features per vSSD: the nine Table 1
//! states (average bandwidth, IOPS, latency, SLO violations, queue delay,
//! read/write ratio, available capacity, GC flag, current priority) plus
//! two states shared across collocated agents (the sums of everyone's IOPS
//! and SLO violations, §3.3.1). Three consecutive windows are stacked into
//! the 33-float observation.

use std::collections::VecDeque;

use fleetio_des::window::WindowSummary;
use fleetio_vssd::engine::{Engine, VssdSnapshot};
use fleetio_vssd::request::Priority;
use fleetio_vssd::vssd::VssdId;

/// Raw features per observation window (9 Table 1 states + 2 shared).
pub const STATES_PER_WINDOW: usize = 11;

/// One window's raw RL state for one vSSD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateVector {
    /// `Avg_BW`: average I/O bandwidth, bytes/second.
    pub avg_bw: f64,
    /// `Avg_IOPS`: average request rate, requests/second.
    pub avg_iops: f64,
    /// `Avg_Lat`: average request latency, microseconds.
    pub avg_lat_us: f64,
    /// `SLO_Vio`: fraction of requests violating the SLO, `[0, 1]`.
    pub slo_vio: f64,
    /// `QDelay`: mean queueing delay, microseconds.
    pub qdelay_us: f64,
    /// `RW_Ratio`: read fraction of operations, `[0, 1]`.
    pub rw_ratio: f64,
    /// `Avail_Capacity`: free logical capacity, gigabytes.
    pub avail_capacity_gb: f64,
    /// `In_GC`: whether the vSSD is garbage-collecting (0 or 1).
    pub in_gc: f64,
    /// `Cur_Priority`: current priority as 0 (low) / 0.5 (medium) / 1.
    pub cur_priority: f64,
    /// Shared: sum of collocated agents' `Avg_IOPS`.
    pub shared_iops: f64,
    /// Shared: sum of collocated agents' `SLO_Vio`.
    pub shared_slo_vio: f64,
}

impl StateVector {
    /// Builds the raw state from a window summary and an engine snapshot;
    /// the shared terms must be aggregated by the caller over all agents.
    pub fn from_window(
        window: &WindowSummary,
        snapshot: &VssdSnapshot,
        shared_iops: f64,
        shared_slo_vio: f64,
    ) -> Self {
        StateVector {
            avg_bw: window.avg_bandwidth,
            avg_iops: window.avg_iops,
            avg_lat_us: window.avg_latency.as_micros_f64(),
            slo_vio: window.slo_violation_rate,
            qdelay_us: window.avg_queue_delay.as_micros_f64(),
            rw_ratio: window.read_ratio,
            avail_capacity_gb: snapshot.free_capacity_bytes as f64 / 1e9,
            in_gc: if snapshot.in_gc { 1.0 } else { 0.0 },
            cur_priority: match snapshot.priority {
                Priority::Low => 0.0,
                Priority::Medium => 0.5,
                Priority::High => 1.0,
            },
            shared_iops,
            shared_slo_vio,
        }
    }

    /// The 11 features as floats, in a stable order.
    pub fn to_features(self) -> [f32; STATES_PER_WINDOW] {
        [
            self.avg_bw as f32,
            self.avg_iops as f32,
            self.avg_lat_us as f32,
            self.slo_vio as f32,
            self.qdelay_us as f32,
            self.rw_ratio as f32,
            self.avail_capacity_gb as f32,
            self.in_gc as f32,
            self.cur_priority as f32,
            self.shared_iops as f32,
            self.shared_slo_vio as f32,
        ]
    }

    /// An all-zero state (used to pad history before enough windows exist).
    pub fn zero() -> Self {
        StateVector {
            avg_bw: 0.0,
            avg_iops: 0.0,
            avg_lat_us: 0.0,
            slo_vio: 0.0,
            qdelay_us: 0.0,
            rw_ratio: 0.0,
            avail_capacity_gb: 0.0,
            in_gc: 0.0,
            cur_priority: 0.5,
            shared_iops: 0.0,
            shared_slo_vio: 0.0,
        }
    }
}

/// Extracts every agent's [`StateVector`] from one round of window
/// summaries, computing the two shared states (sums of the *other*
/// agents' IOPS and SLO violations, §3.3.1) from the full set.
pub fn extract_states(engine: &Engine, summaries: &[(VssdId, WindowSummary)]) -> Vec<StateVector> {
    let total_iops: f64 = summaries.iter().map(|(_, w)| w.avg_iops).sum();
    let total_vio: f64 = summaries.iter().map(|(_, w)| w.slo_violation_rate).sum();
    summaries
        .iter()
        .map(|(id, w)| {
            let snap = engine.snapshot(*id);
            StateVector::from_window(
                w,
                &snap,
                total_iops - w.avg_iops,
                total_vio - w.slo_violation_rate,
            )
        })
        .collect()
}

/// A fixed-depth history of state windows, concatenated oldest-first into
/// the observation (§3.3.1: three windows).
#[derive(Debug, Clone, PartialEq)]
pub struct StateHistory {
    depth: usize,
    windows: VecDeque<StateVector>,
}

impl StateHistory {
    /// Creates a zero-padded history of `depth` windows.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "history depth must be positive");
        let windows = (0..depth).map(|_| StateVector::zero()).collect();
        StateHistory { depth, windows }
    }

    /// Pushes the newest window, evicting the oldest.
    pub fn push(&mut self, state: StateVector) {
        self.windows.pop_front();
        self.windows.push_back(state);
        debug_assert_eq!(self.windows.len(), self.depth);
    }

    /// The newest window.
    pub fn latest(&self) -> StateVector {
        *self.windows.back().expect("history non-empty")
    }

    /// The concatenated observation (`depth × 11` floats, oldest first).
    pub fn observation(&self) -> Vec<f32> {
        let mut obs = Vec::with_capacity(self.depth * STATES_PER_WINDOW);
        for w in &self.windows {
            obs.extend_from_slice(&w.to_features());
        }
        obs
    }

    /// Resets the history to zeros.
    pub fn reset(&mut self) {
        for w in &mut self.windows {
            *w = StateVector::zero();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::{SimDuration, SimTime};

    fn snapshot() -> VssdSnapshot {
        VssdSnapshot {
            free_capacity_bytes: 2_000_000_000,
            in_gc: true,
            priority: Priority::High,
            harvested_channels: 1,
            harvestable_channels: 0,
        }
    }

    fn window() -> WindowSummary {
        let mut w = WindowSummary::idle(SimTime::ZERO, SimDuration::from_secs(2));
        w.avg_bandwidth = 1e6;
        w.avg_iops = 500.0;
        w.avg_latency = SimDuration::from_micros(120);
        w.slo_violation_rate = 0.02;
        w.avg_queue_delay = SimDuration::from_micros(30);
        w.read_ratio = 0.8;
        w
    }

    #[test]
    fn from_window_maps_table_1() {
        let s = StateVector::from_window(&window(), &snapshot(), 900.0, 0.05);
        assert_eq!(s.avg_bw, 1e6);
        assert_eq!(s.avg_iops, 500.0);
        assert_eq!(s.avg_lat_us, 120.0);
        assert_eq!(s.slo_vio, 0.02);
        assert_eq!(s.qdelay_us, 30.0);
        assert_eq!(s.rw_ratio, 0.8);
        assert_eq!(s.avail_capacity_gb, 2.0);
        assert_eq!(s.in_gc, 1.0);
        assert_eq!(s.cur_priority, 1.0);
        assert_eq!(s.shared_iops, 900.0);
        assert_eq!(s.shared_slo_vio, 0.05);
    }

    #[test]
    fn feature_vector_has_11_entries() {
        let s = StateVector::from_window(&window(), &snapshot(), 0.0, 0.0);
        assert_eq!(s.to_features().len(), STATES_PER_WINDOW);
    }

    #[test]
    fn history_concatenates_oldest_first() {
        let mut h = StateHistory::new(3);
        assert_eq!(h.observation().len(), 33);
        let s = StateVector::from_window(&window(), &snapshot(), 0.0, 0.0);
        h.push(s);
        let obs = h.observation();
        // Oldest two windows are zero-padded, newest fills the tail.
        assert_eq!(obs[0], 0.0);
        assert_eq!(obs[22], 1e6);
        assert_eq!(h.latest(), s);
    }

    #[test]
    fn history_evicts_and_resets() {
        let mut h = StateHistory::new(2);
        let s = StateVector::from_window(&window(), &snapshot(), 0.0, 0.0);
        h.push(s);
        h.push(s);
        assert_eq!(h.observation()[0], 1e6);
        h.reset();
        assert_eq!(h.observation()[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "history depth")]
    fn zero_depth_panics() {
        let _ = StateHistory::new(0);
    }
}
