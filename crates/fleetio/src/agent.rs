//! Per-vSSD deployment agents and offline pre-training (§3.8).
//!
//! The paper pre-trains one PPO model offline (RLlib + Ray) on a set of
//! workloads disjoint from the evaluation set, then deploys an agent per
//! vSSD. Here [`pretrain`] trains the shared policy over one or more
//! collocation scenarios (optionally collecting rollouts in parallel, the
//! Ray stand-in), and [`FleetIoAgent`] wraps the frozen model for
//! per-window greedy inference.

use fleetio_des::rng::SmallRng;
use fleetio_rl::parallel::collect_parallel_envs;
use fleetio_rl::{MultiAgentEnv, ObsNormalizer, PpoConfig, PpoPolicy, PpoTrainer};

use crate::actions::AgentAction;
use crate::config::FleetIoConfig;
use crate::driver::TenantSpec;
use crate::env::FleetIoEnv;
use crate::states::{StateHistory, StateVector};

/// A pre-trained FleetIO model: policy weights plus frozen observation
/// statistics.
#[derive(Debug, Clone)]
pub struct PretrainedModel {
    /// The PPO actor-critic.
    pub policy: PpoPolicy,
    /// Frozen observation normalizer.
    pub normalizer: ObsNormalizer,
}

impl PretrainedModel {
    /// Approximate serialized size in bytes (the paper's model is 2.2 MB
    /// with ~9 K parameters; ours stores f32 weights plus metadata).
    pub fn approx_size_bytes(&self) -> usize {
        self.policy.n_params() * 4 + self.normalizer.dim() * 16
    }
}

/// PPO hyper-parameters derived from the FleetIO configuration (Table 3).
pub fn ppo_config(cfg: &FleetIoConfig) -> PpoConfig {
    PpoConfig {
        lr: cfg.learning_rate,
        critic_lr: cfg.learning_rate * 10.0,
        gamma: cfg.gamma,
        minibatch: cfg.batch_size,
        ..PpoConfig::default()
    }
}

/// Options for [`pretrain`].
#[derive(Debug, Clone, Copy)]
pub struct PretrainOptions {
    /// Training iterations (the paper uses 2 000; scaled-down runs use
    /// far fewer).
    pub iterations: usize,
    /// Environment windows collected per iteration per worker.
    pub windows_per_rollout: usize,
    /// Serial warm-up iterations that feed the observation normalizer
    /// before it freezes for parallel collection.
    pub warmup_iterations: usize,
    /// Collect rollouts from all scenarios in parallel (the Ray stand-in).
    pub parallel: bool,
    /// Learning-rate override for scaled-down training budgets. The paper
    /// trains 2 000 iterations × batch 256 at 1e-4; shorter budgets need a
    /// proportionally larger step. `None` keeps Table 3's value.
    pub lr_override: Option<f32>,
    /// Behaviour-cloning warm-start rounds before PPO. Each round collects
    /// one rollout per scenario driven by [`reference_action`] (with
    /// ε-greedy exploration) and fits the actor to it by cross-entropy.
    /// The paper's full 2 000-iteration budget learns this from scratch;
    /// scaled-down budgets imitate first, then let PPO fine-tune.
    pub bc_rounds: usize,
    /// Exploration rate during behaviour-cloning collection.
    pub bc_epsilon: f64,
    /// Called after every update with `(iteration, mean_reward)`.
    pub progress: Option<fn(usize, f64)>,
}

impl Default for PretrainOptions {
    fn default() -> Self {
        PretrainOptions {
            iterations: 40,
            windows_per_rollout: 24,
            warmup_iterations: 4,
            parallel: true,
            lr_override: Some(1e-3),
            bc_rounds: 6,
            bc_epsilon: 0.15,
            progress: None,
        }
    }
}

/// Pre-trains the shared FleetIO policy over `scenarios` (each a tenant
/// list forming one collocation). Returns the frozen model.
///
/// # Panics
///
/// Panics if `scenarios` is empty or any configuration is invalid.
pub fn pretrain(
    cfg: &FleetIoConfig,
    scenarios: &[Vec<TenantSpec>],
    warm_fraction: f64,
    opts: PretrainOptions,
    seed: u64,
) -> PretrainedModel {
    let mut trainer = pretrain_trainer(cfg, scenarios, warm_fraction, opts, seed);
    trainer.normalizer.freeze();
    PretrainedModel {
        policy: trainer.policy,
        normalizer: trainer.normalizer,
    }
}

/// Like [`pretrain`] but returns the full trainer (optimizers, RNG,
/// update counter, running normalizer) so training can continue — the
/// input to checkpointing and guarded online fine-tuning in
/// `fleetio-model`. [`pretrain`] is this plus a normalizer freeze.
///
/// # Panics
///
/// Panics if `scenarios` is empty or any configuration is invalid.
pub fn pretrain_trainer(
    cfg: &FleetIoConfig,
    scenarios: &[Vec<TenantSpec>],
    warm_fraction: f64,
    opts: PretrainOptions,
    seed: u64,
) -> PpoTrainer {
    assert!(!scenarios.is_empty(), "need at least one scenario");
    let mut rng = SmallRng::seed_from_u64(seed);
    let policy = PpoPolicy::new(
        cfg.obs_dim(),
        &cfg.action_dims(),
        &cfg.hidden_layers,
        &mut rng,
    );
    let mut ppo_cfg = ppo_config(cfg);
    if let Some(lr) = opts.lr_override {
        ppo_cfg.lr = lr;
        ppo_cfg.critic_lr = lr * 3.0;
    }
    let mut trainer = PpoTrainer::new(policy, cfg.obs_dim(), ppo_cfg, seed ^ 0x5151);

    let horizon = opts.windows_per_rollout;
    let mut envs: Vec<FleetIoEnv> = scenarios
        .iter()
        .enumerate()
        .map(|(i, tenants)| {
            let rewards = FleetIoEnv::default_rewards(cfg, tenants);
            FleetIoEnv::new(
                cfg.clone(),
                tenants.clone(),
                rewards,
                warm_fraction,
                horizon,
                seed.wrapping_add(i as u64),
            )
        })
        .collect();

    // Behaviour-cloning warm-start: collect reference-policy rollouts
    // (DAgger-style: ε-greedy execution, reference labels at the visited
    // states), then fit the actor by cross-entropy.
    if opts.bc_rounds > 0 {
        use fleetio_des::rng::Rng;
        let ch_bw = cfg.engine.flash.channel_peak_bytes_per_sec();
        let mut bc_rng = SmallRng::seed_from_u64(seed ^ 0xBC0);
        let mut raw_pairs: Vec<(Vec<f32>, Vec<usize>)> = Vec::new();
        for _ in 0..opts.bc_rounds {
            for (ei, env) in envs.iter_mut().enumerate() {
                let params: Vec<ReferenceParams> = scenarios[ei]
                    .iter()
                    .map(|t| ReferenceParams {
                        bw_guarantee: t.config.channels.len() as f64 * ch_bw,
                        slo_vio_guarantee: cfg.slo_violation_guarantee,
                        max_channels: cfg.max_action_channels,
                        alpha: crate::typing::alpha_for_kind(cfg, t.kind),
                        altruistic: cfg.beta < 0.999,
                    })
                    .collect();
                let _ = env.reset();
                let mut actions: Vec<AgentAction> =
                    scenarios[ei].iter().map(|_| AgentAction::idle()).collect();
                for _ in 0..horizon {
                    let (states, step) = env.step_decoded(&actions);
                    let labels: Vec<AgentAction> = states
                        .iter()
                        .zip(&params)
                        .map(|(st, p)| reference_action(st, p))
                        .collect();
                    for (o, l) in step.observations.iter().zip(&labels) {
                        trainer.normalizer.update(o);
                        raw_pairs.push((o.clone(), l.to_heads().to_vec()));
                    }
                    actions = labels
                        .iter()
                        .map(|l| {
                            let mut h = l.to_heads();
                            for (hi, dim) in cfg.action_dims().iter().enumerate() {
                                if bc_rng.gen_range(0.0..1.0) < opts.bc_epsilon {
                                    h[hi] = bc_rng.gen_range(0..*dim);
                                }
                            }
                            AgentAction::from_heads(&h)
                        })
                        .collect();
                    if step.done {
                        break;
                    }
                }
            }
        }
        let samples: Vec<(Vec<f32>, Vec<usize>)> = raw_pairs
            .iter()
            .map(|(o, l)| (trainer.normalizer.normalize(o), l.clone()))
            .collect();
        trainer
            .policy
            .imitate(&samples, 40, cfg.batch_size, 3e-3, seed ^ 0xBC1);
    }

    // Serial warm-up: feed the running normalizer real observations.
    let n_envs = envs.len();
    for it in 0..opts.warmup_iterations.min(opts.iterations) {
        let env = &mut envs[it % n_envs];
        let stats = trainer.train_iteration(env, horizon);
        if let Some(f) = opts.progress {
            f(it, stats.mean_reward);
        }
    }
    let remaining = opts.iterations.saturating_sub(opts.warmup_iterations);
    if opts.parallel && remaining > 0 {
        trainer.normalizer.freeze();
        for round in 0..remaining {
            let buffer = collect_parallel_envs(
                &mut envs,
                &trainer.policy,
                &trainer.normalizer,
                horizon,
                trainer.config().gamma,
                seed.wrapping_add(round as u64),
            );
            let mean: f64 = buffer.transitions().iter().map(|t| t.reward).sum::<f64>()
                / buffer.len().max(1) as f64;
            trainer.update(buffer);
            if let Some(f) = opts.progress {
                f(opts.warmup_iterations + round, mean);
            }
        }
    } else {
        for it in 0..remaining {
            let idx = (opts.warmup_iterations + it) % n_envs;
            let stats = trainer.train_iteration(&mut envs[idx], horizon);
            if let Some(f) = opts.progress {
                f(opts.warmup_iterations + it, stats.mean_reward);
            }
        }
    }
    trainer
}

/// Parameters conditioning the scripted reference policy on the paper's
/// reward design: the per-type α (Equation 1) sets how strictly the agent
/// trades bandwidth for isolation, and β < 1 (Equation 2) is what gives an
/// agent any incentive to make its resources harvestable at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceParams {
    /// Guaranteed bandwidth of the vSSD's allocation, bytes/second.
    pub bw_guarantee: f64,
    /// Guaranteed SLO-violation fraction (paper default 1 %).
    pub slo_vio_guarantee: f64,
    /// Maximum channels an action can name.
    pub max_channels: usize,
    /// The agent's reward α (larger → stricter isolation).
    pub alpha: f64,
    /// Whether the reward is mixed across agents (β < 1). A selfish agent
    /// (β = 1) has no incentive to offer resources — exactly the
    /// FleetIO-Customized-Local ablation finding of Figure 15.
    pub altruistic: bool,
}

/// The scripted reference policy used to warm-start PPO (and as the
/// `heuristic` ablation baseline). It encodes the paper's qualitative
/// description of good agent behaviour (§3.3.2): bandwidth-hungry vSSDs
/// harvest, under-utilized vSSDs make resources harvestable (less when
/// collocated agents report high SLO violations or the vSSD is in GC),
/// and vSSDs struggling with violations raise their priority. The
/// bandwidth/isolation knee scales with the reward α, so per-type reward
/// fine-tuning (§3.4) shows up in behaviour.
pub fn reference_action(state: &StateVector, params: &ReferenceParams) -> AgentAction {
    use fleetio_vssd::request::Priority;
    let usage = if params.bw_guarantee > 0.0 {
        state.avg_bw / params.bw_guarantee
    } else {
        0.0
    };
    let avg_io = if state.avg_iops > 1.0 {
        state.avg_bw / state.avg_iops
    } else {
        0.0
    };
    let latency_sensitive = state.avg_iops > 100.0 && avg_io < 128.0 * 1024.0;

    let priority = if latency_sensitive || state.slo_vio > params.slo_vio_guarantee {
        Priority::High
    } else {
        // Bulk traffic yields so collocated latency-sensitive requests and
        // reclamation GC are never stuck behind it.
        Priority::Low
    };
    // Harvest when bandwidth-starved: either using most of the guarantee
    // or queueing heavily (shared-channel tenants can starve well below
    // their nominal guarantee, §2.2).
    let starved = usage > 0.35 || state.qdelay_us > 2_000.0;
    let harvest_channels = if starved && !latency_sensitive {
        params.max_channels
    } else {
        0
    };

    if !params.altruistic {
        // β = 1: nothing in the reward pays for offering resources.
        return AgentAction {
            harvest_channels,
            harvestable_channels: 0,
            priority,
        };
    }
    let mut harvestable_channels = if usage < 0.1 {
        params.max_channels
    } else if usage < 0.3 {
        params.max_channels / 2
    } else {
        0
    };
    // Back off when the vSSD is collecting garbage or the neighbourhood is
    // already violating SLOs (§3.3.2's examples).
    if state.in_gc > 0.5 || state.shared_slo_vio > 4.0 * params.slo_vio_guarantee {
        harvestable_channels = harvestable_channels.saturating_sub(params.max_channels / 2);
    }
    // Regulate the offer against the vSSD's *own* violations: harvesters
    // on loaned channels are the main interference source, so shrinking
    // the offer is the lever that restores the SLO. A smaller reward α
    // (utilization-leaning) tolerates proportionally more violations; the
    // reference point is the LC-1 fine-tuned α = 2.5e-2.
    let strictness = (2.5e-2 / params.alpha.clamp(1e-3, 1.0)).clamp(0.2, 5.0);
    if state.slo_vio > 3.0 * params.slo_vio_guarantee * strictness {
        harvestable_channels = 0;
    } else if state.slo_vio > 1.5 * params.slo_vio_guarantee * strictness {
        harvestable_channels /= 4;
    } else if state.slo_vio > params.slo_vio_guarantee * strictness {
        harvestable_channels /= 2;
    }
    AgentAction {
        harvest_channels,
        harvestable_channels,
        priority,
    }
}

/// A deployed per-vSSD agent: frozen model + per-agent state history.
#[derive(Debug, Clone)]
pub struct FleetIoAgent {
    policy: PpoPolicy,
    normalizer: ObsNormalizer,
    history: StateHistory,
}

impl FleetIoAgent {
    /// Instantiates an agent from a pre-trained model.
    pub fn new(model: &PretrainedModel, history_windows: usize) -> Self {
        let mut normalizer = model.normalizer.clone();
        normalizer.freeze();
        FleetIoAgent {
            policy: model.policy.clone(),
            normalizer,
            history: StateHistory::new(history_windows),
        }
    }

    /// Feeds the newest window state and returns the greedy action
    /// (deployment inference, §3.8: ~1 ms per window on one core).
    pub fn decide(&mut self, state: StateVector) -> AgentAction {
        self.history.push(state);
        let obs = self.normalizer.normalize(&self.history.observation());
        AgentAction::from_heads(&self.policy.act_greedy(&obs))
    }

    /// Clears the agent's window history (workload swap, redeployment).
    pub fn reset(&mut self) {
        self.history.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_des::SimDuration;
    use fleetio_flash::addr::ChannelId;
    use fleetio_flash::config::FlashConfig;
    use fleetio_vssd::vssd::{VssdConfig, VssdId};
    use fleetio_workloads::WorkloadKind;

    fn tiny_cfg() -> FleetIoConfig {
        let mut cfg = FleetIoConfig::default();
        cfg.engine.flash = FlashConfig::training_test();
        cfg.decision_interval = SimDuration::from_millis(250);
        cfg
    }

    fn scenario() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(
                VssdConfig::hardware(VssdId(0), vec![ChannelId(0), ChannelId(1)])
                    .with_slo(SimDuration::from_millis(2)),
                WorkloadKind::Tpce,
                1,
            ),
            TenantSpec::new(
                VssdConfig::hardware(VssdId(1), vec![ChannelId(2), ChannelId(3)]),
                WorkloadKind::BatchAnalytics,
                2,
            ),
        ]
    }

    fn quick_opts() -> PretrainOptions {
        PretrainOptions {
            iterations: 3,
            windows_per_rollout: 4,
            warmup_iterations: 1,
            parallel: false,
            lr_override: None,
            bc_rounds: 1,
            bc_epsilon: 0.2,
            progress: None,
        }
    }

    #[test]
    fn pretrain_produces_a_frozen_model() {
        let cfg = tiny_cfg();
        let model = pretrain(&cfg, &[scenario()], 0.0, quick_opts(), 11);
        assert!(model.normalizer.is_frozen());
        // Paper scale: ~9 K parameters.
        assert!((5_000..15_000).contains(&model.policy.n_params()));
        assert!(model.approx_size_bytes() > 20_000);
    }

    #[test]
    fn pretrain_parallel_mode_works() {
        let cfg = tiny_cfg();
        let opts = PretrainOptions {
            parallel: true,
            ..quick_opts()
        };
        let model = pretrain(&cfg, &[scenario(), scenario()], 0.0, opts, 12);
        assert!(model.normalizer.is_frozen());
    }

    #[test]
    fn agent_decides_deterministically_when_greedy() {
        let cfg = tiny_cfg();
        let model = pretrain(&cfg, &[scenario()], 0.0, quick_opts(), 13);
        let mut a = FleetIoAgent::new(&model, cfg.history_windows);
        let mut b = FleetIoAgent::new(&model, cfg.history_windows);
        let state = StateVector::zero();
        assert_eq!(a.decide(state), b.decide(state));
        // Action heads stay within bounds.
        let act = a.decide(state);
        assert!(act.harvest_channels <= cfg.max_action_channels);
        assert!(act.harvestable_channels <= cfg.max_action_channels);
    }

    #[test]
    fn agent_reset_clears_history() {
        let cfg = tiny_cfg();
        let model = pretrain(&cfg, &[scenario()], 0.0, quick_opts(), 14);
        let mut a = FleetIoAgent::new(&model, cfg.history_windows);
        let mut s = StateVector::zero();
        s.avg_bw = 1e8;
        let _ = a.decide(s);
        a.reset();
        let mut b = FleetIoAgent::new(&model, cfg.history_windows);
        assert_eq!(a.decide(StateVector::zero()), b.decide(StateVector::zero()));
    }

    #[test]
    fn ppo_config_follows_table_3() {
        let cfg = tiny_cfg();
        let p = ppo_config(&cfg);
        assert_eq!(p.lr, cfg.learning_rate);
        assert_eq!(p.gamma, cfg.gamma);
        assert_eq!(p.minibatch, cfg.batch_size);
    }
}
