//! Comparison policies (§4.1 of the paper).
//!
//! * **Hardware Isolation** — each vSSD owns an equal share of channels;
//!   nothing happens at runtime (strongest isolation, lowest utilization).
//! * **Software Isolation** — every vSSD shares all channels; stride
//!   scheduling prevents starvation; no further runtime action.
//! * **Adaptive** — software-shared channels with per-window bandwidth
//!   re-provisioning proportional to each vSSD's utilization in the prior
//!   window (the eZNS-style baseline (ref. 31 in the paper)).
//! * **SSDKeeper** — a DNN predicts each workload's demanded channel count
//!   from its I/O features; the partition is static hardware isolation.
//! * **FleetIO** — one RL agent per vSSD taking Table 2 actions through
//!   admission control every window.

use std::collections::BTreeMap;

use fleetio_des::rng::SmallRng;
use fleetio_des::window::WindowSummary;
use fleetio_ml::{Activation, Adam, Mlp, StandardScaler};
use fleetio_vssd::vssd::VssdId;
use fleetio_workloads::WindowFeatures;

use crate::agent::{FleetIoAgent, PretrainedModel};
use crate::config::FleetIoConfig;
use crate::driver::Colocation;
use crate::states::extract_states;

/// A runtime policy invoked after every decision window.
pub trait WindowPolicy: std::fmt::Debug {
    /// The policy's display name.
    fn name(&self) -> &'static str;

    /// Reacts to the window that just completed.
    fn on_window(&mut self, coloc: &mut Colocation, summaries: &[(VssdId, WindowSummary)]);
}

/// A policy that never acts (Hardware and Software Isolation).
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    name: &'static str,
}

impl StaticPolicy {
    /// Hardware Isolation (each vSSD on its own channels).
    pub fn hardware() -> Self {
        StaticPolicy {
            name: "hardware-isolation",
        }
    }

    /// Software Isolation (all vSSDs share all channels).
    pub fn software() -> Self {
        StaticPolicy {
            name: "software-isolation",
        }
    }

    /// SSDKeeper at runtime (its DNN decided the static partition up
    /// front; nothing moves afterwards).
    pub fn ssdkeeper() -> Self {
        StaticPolicy { name: "ssdkeeper" }
    }

    /// Mixed Isolation (Figure 16's strongest-isolation baseline).
    pub fn mixed() -> Self {
        StaticPolicy {
            name: "mixed-isolation",
        }
    }
}

impl WindowPolicy for StaticPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_window(&mut self, _coloc: &mut Colocation, _summaries: &[(VssdId, WindowSummary)]) {}
}

/// The Adaptive baseline: bandwidth shares re-provisioned each window in
/// proportion to the prior window's measured bandwidth (the paper's
/// channel-proportional reallocation (its ref. 31), via stride shares and rate limits
/// on shared channels, which is the equivalent control knob in this
/// virtualization layer).
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    /// Total provisionable bandwidth, bytes/second.
    total_bw: f64,
    /// Exponential smoothing factor for shares.
    smoothing: f64,
    /// Minimum share per vSSD (one channel's worth), fraction.
    min_share: f64,
    shares: BTreeMap<VssdId, f64>,
}

impl AdaptivePolicy {
    /// Creates the policy for a device with `total_bw` bytes/second across
    /// `n_channels` channels.
    ///
    /// # Panics
    ///
    /// Panics unless `total_bw` is positive and `n_channels` nonzero.
    pub fn new(total_bw: f64, n_channels: usize) -> Self {
        assert!(total_bw > 0.0, "total bandwidth must be positive");
        assert!(n_channels > 0, "need at least one channel");
        AdaptivePolicy {
            total_bw,
            smoothing: 0.5,
            // One and a half channels' worth as the floor: eZNS-style
            // reallocation shrinks quiet tenants hard, which is what makes
            // the Adaptive baseline's tail the worst of the five policies.
            min_share: 1.8 / n_channels as f64,
            shares: BTreeMap::new(),
        }
    }
}

impl WindowPolicy for AdaptivePolicy {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn on_window(&mut self, coloc: &mut Colocation, summaries: &[(VssdId, WindowSummary)]) {
        let total: f64 = summaries.iter().map(|(_, w)| w.avg_bandwidth).sum();
        if total <= 0.0 {
            return;
        }
        // Smooth the observed shares, clamp to a small floor, and
        // re-provision: stride tickets proportional to the share (channel
        // reallocation) plus a rate cap with headroom. Both react one
        // window late — the lag that gives the Adaptive baseline the worst
        // tail latency in the paper's Figure 10.
        for (id, w) in summaries {
            let observed = w.avg_bandwidth / total;
            let prev = self
                .shares
                .get(id)
                .copied()
                .unwrap_or(1.0 / summaries.len() as f64);
            let s = (self.smoothing * observed + (1.0 - self.smoothing) * prev).max(self.min_share);
            self.shares.insert(*id, s);
            let engine = coloc.engine_mut();
            engine.set_tickets(*id, ((s * 1000.0) as u32).max(10));
            engine.set_rate_limit(*id, Some(s * self.total_bw * 1.25));
        }
    }
}

/// The SSDKeeper planner: a small DNN mapping workload features to the
/// demanded number of flash channels (trained from offline profiles), used
/// to choose a static hardware partition.
#[derive(Debug, Clone)]
pub struct SsdKeeperPlanner {
    net: Mlp,
    scaler: StandardScaler,
    max_channels: usize,
}

impl SsdKeeperPlanner {
    /// Trains the demand predictor from `(features, demanded_channels)`
    /// profile pairs.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or `max_channels` is zero.
    pub fn train(profiles: &[(WindowFeatures, usize)], max_channels: usize, seed: u64) -> Self {
        assert!(!profiles.is_empty(), "need profiling data");
        assert!(max_channels > 0, "max_channels must be positive");
        let raw: Vec<Vec<f64>> = profiles.iter().map(|(f, _)| f.to_vec()).collect();
        let scaler = StandardScaler::fit(&raw);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut net = Mlp::new(&[4, 16, 1], Activation::Tanh, Activation::Linear, &mut rng);
        let mut opt = Adam::new(net.n_params(), 5e-3);
        let inputs: Vec<Vec<f32>> = scaler
            .transform_all(&raw)
            .into_iter()
            .map(|v| v.into_iter().map(|x| x as f32).collect())
            .collect();
        let targets: Vec<f32> = profiles
            .iter()
            .map(|(_, d)| *d as f32 / max_channels as f32)
            .collect();
        for _ in 0..1500 {
            let mut grads = net.zero_grads();
            for (x, y) in inputs.iter().zip(&targets) {
                let cache = net.forward_cached(x);
                let err = cache.output()[0] - y;
                net.backward(&cache, &[2.0 * err], &mut grads);
            }
            grads.scale(1.0 / inputs.len() as f32);
            opt.step(&mut net, &grads);
        }
        SsdKeeperPlanner {
            net,
            scaler,
            max_channels,
        }
    }

    /// Predicted channel demand for a workload with these features.
    pub fn predict_demand(&self, features: WindowFeatures) -> usize {
        let x: Vec<f32> = self
            .scaler
            .transform(&features.to_vec())
            .into_iter()
            .map(|v| v as f32)
            .collect();
        let frac = f64::from(self.net.forward(&x)[0]).clamp(0.0, 1.0);
        ((frac * self.max_channels as f64).round() as usize).clamp(1, self.max_channels)
    }

    /// Plans a static partition of `total_channels` for the given per-
    /// tenant features: demands are predicted, then scaled proportionally
    /// to fill the device exactly (every channel is always allocated).
    pub fn plan(&self, tenants: &[WindowFeatures], total_channels: usize) -> Vec<usize> {
        assert!(!tenants.is_empty(), "no tenants to plan for");
        let demands: Vec<f64> = tenants
            .iter()
            .map(|f| self.predict_demand(*f) as f64)
            .collect();
        proportional_split(&demands, total_channels)
    }
}

/// Splits `total` integer units proportionally to `weights`, guaranteeing
/// at least one unit each (largest-remainder method).
pub fn proportional_split(weights: &[f64], total: usize) -> Vec<usize> {
    assert!(!weights.is_empty(), "weights must be non-empty");
    assert!(total >= weights.len(), "need at least one unit per weight");
    let sum: f64 = weights.iter().map(|w| w.max(1e-9)).sum();
    let spendable = total - weights.len();
    let ideal: Vec<f64> = weights
        .iter()
        .map(|w| w.max(1e-9) / sum * spendable as f64)
        .collect();
    let mut alloc: Vec<usize> = ideal.iter().map(|x| 1 + x.floor() as usize).collect();
    let mut rest: Vec<(usize, f64)> = ideal
        .iter()
        .enumerate()
        .map(|(i, x)| (i, x - x.floor()))
        .collect();
    rest.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite remainders"));
    let mut remaining = total - alloc.iter().sum::<usize>();
    for (i, _) in rest {
        if remaining == 0 {
            break;
        }
        alloc[i] += 1;
        remaining -= 1;
    }
    alloc
}

/// The scripted heuristic policy: every vSSD driven directly by
/// [`crate::agent::reference_action`] (no neural network). This is both
/// the behaviour-cloning teacher and a mechanism-level ablation: FleetIO's
/// learned policy should approach it.
#[derive(Debug)]
pub struct HeuristicPolicy {
    cfg: FleetIoConfig,
    /// Per-tenant reference parameters (guarantee, α, β-altruism).
    params: Vec<crate::agent::ReferenceParams>,
}

impl HeuristicPolicy {
    /// Builds the policy for tenants with the given per-tenant channel
    /// counts and workload kinds (α from the paper's per-type values).
    pub fn new(cfg: FleetIoConfig, tenants: &[(usize, fleetio_workloads::WorkloadKind)]) -> Self {
        let ch_bw = cfg.engine.flash.channel_peak_bytes_per_sec();
        let params = tenants
            .iter()
            .map(|(channels, kind)| crate::agent::ReferenceParams {
                bw_guarantee: *channels as f64 * ch_bw,
                slo_vio_guarantee: cfg.slo_violation_guarantee,
                max_channels: cfg.max_action_channels,
                alpha: crate::typing::alpha_for_kind(&cfg, *kind),
                altruistic: cfg.beta < 0.999,
            })
            .collect();
        HeuristicPolicy { cfg, params }
    }
}

impl WindowPolicy for HeuristicPolicy {
    fn name(&self) -> &'static str {
        "heuristic"
    }

    fn on_window(&mut self, coloc: &mut Colocation, summaries: &[(VssdId, WindowSummary)]) {
        assert_eq!(
            summaries.len(),
            self.params.len(),
            "one param set per tenant"
        );
        let states = extract_states(coloc.engine(), summaries);
        let ch_bw = coloc.engine().channel_peak_bytes_per_sec();
        for ((p, (id, _)), state) in self.params.iter().zip(summaries).zip(states) {
            let action = crate::agent::reference_action(&state, p);
            let engine = coloc.engine_mut();
            engine.set_priority(*id, action.priority);
            engine.submit_action(action.make_harvestable_action(*id, ch_bw));
            engine.submit_action(action.harvest_action(*id, ch_bw));
        }
        let _ = &self.cfg;
    }
}

/// The FleetIO runtime policy: one agent per vSSD, greedy inference,
/// harvest actions through admission control.
#[derive(Debug)]
pub struct FleetIoPolicy {
    cfg: FleetIoConfig,
    agents: Vec<FleetIoAgent>,
}

impl FleetIoPolicy {
    /// Deploys one agent per tenant from the shared pre-trained model.
    pub fn new(cfg: FleetIoConfig, model: &PretrainedModel, n_tenants: usize) -> Self {
        let agents = (0..n_tenants)
            .map(|_| FleetIoAgent::new(model, cfg.history_windows))
            .collect();
        FleetIoPolicy { cfg, agents }
    }

    /// Resets every agent's history (e.g. at a workload swap).
    pub fn reset_agents(&mut self) {
        for a in &mut self.agents {
            a.reset();
        }
    }
}

impl WindowPolicy for FleetIoPolicy {
    fn name(&self) -> &'static str {
        "fleetio"
    }

    fn on_window(&mut self, coloc: &mut Colocation, summaries: &[(VssdId, WindowSummary)]) {
        assert_eq!(summaries.len(), self.agents.len(), "one agent per tenant");
        let states = extract_states(coloc.engine(), summaries);
        let ch_bw = coloc.engine().channel_peak_bytes_per_sec();
        for ((agent, (id, _)), state) in self.agents.iter_mut().zip(summaries).zip(states) {
            let action = agent.decide(state);
            let engine = coloc.engine_mut();
            engine.set_priority(*id, action.priority);
            engine.submit_action(action.make_harvestable_action(*id, ch_bw));
            engine.submit_action(action.harvest_action(*id, ch_bw));
        }
        let _ = &self.cfg;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(bw: f64, size: f64) -> WindowFeatures {
        WindowFeatures {
            read_bw: bw,
            write_bw: bw / 4.0,
            lpa_entropy: 6.0,
            avg_io_size: size,
        }
    }

    #[test]
    fn proportional_split_fills_total_with_floors() {
        assert_eq!(proportional_split(&[1.0, 1.0], 16), vec![8, 8]);
        assert_eq!(proportional_split(&[3.0, 1.0], 16), vec![12, 4]);
        let tiny = proportional_split(&[100.0, 0.0001], 16);
        assert_eq!(tiny.iter().sum::<usize>(), 16);
        assert!(tiny[1] >= 1, "floor violated: {tiny:?}");
    }

    #[test]
    fn ssdkeeper_learns_monotone_demand() {
        // Profiles: demand grows with bandwidth.
        let profiles: Vec<(WindowFeatures, usize)> =
            (1..=8).map(|d| (feat(d as f64 * 5e7, 1e6), d)).collect();
        let planner = SsdKeeperPlanner::train(&profiles, 8, 3);
        let low = planner.predict_demand(feat(5e7, 1e6));
        let high = planner.predict_demand(feat(4e8, 1e6));
        assert!(high > low, "demand not monotone: {low} vs {high}");
        // Planning covers the device.
        let plan = planner.plan(&[feat(4e8, 1e6), feat(5e7, 1e6)], 16);
        assert_eq!(plan.iter().sum::<usize>(), 16);
        assert!(plan[0] > plan[1]);
    }

    #[test]
    fn static_policies_have_names() {
        assert_eq!(StaticPolicy::hardware().name(), "hardware-isolation");
        assert_eq!(StaticPolicy::software().name(), "software-isolation");
        assert_eq!(StaticPolicy::ssdkeeper().name(), "ssdkeeper");
        assert_eq!(StaticPolicy::mixed().name(), "mixed-isolation");
    }

    #[test]
    #[should_panic(expected = "need profiling data")]
    fn ssdkeeper_requires_profiles() {
        let _ = SsdKeeperPlanner::train(&[], 8, 0);
    }
}
