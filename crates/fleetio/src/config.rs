//! FleetIO configuration (Table 3 of the paper).

use fleetio_des::SimDuration;
use fleetio_vssd::engine::EngineConfig;

/// Top-level FleetIO configuration with the paper's defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetIoConfig {
    /// The underlying engine (flash + virtualization) configuration.
    pub engine: EngineConfig,
    /// RL decision interval (Table 3: 2 seconds).
    pub decision_interval: SimDuration,
    /// Multi-agent reward coefficient β (Table 3: 0.6).
    pub beta: f64,
    /// Actor learning rate (Table 3: 1e-4).
    pub learning_rate: f32,
    /// Discount factor γ (Table 3: 0.9).
    pub gamma: f64,
    /// Hidden layer sizes (Table 3: [50, 50]).
    pub hidden_layers: Vec<usize>,
    /// SGD minibatch size (Table 3: 32).
    pub batch_size: usize,
    /// Number of stacked history windows in the observation (§3.3.1: 3).
    pub history_windows: usize,
    /// Target percentage of SLO violations used as the reward baseline
    /// (§3.3.3: 1 %).
    pub slo_violation_guarantee: f64,
    /// Unified reward α for unknown workload types (§3.4: 0.01).
    pub unified_alpha: f64,
    /// Fine-tuned α for the LC-1 cluster (§3.8: 2.5e-2).
    pub alpha_lc1: f64,
    /// Fine-tuned α for the LC-2 cluster (§3.8: 5e-3).
    pub alpha_lc2: f64,
    /// Fine-tuned α for the bandwidth-intensive cluster (§3.8: 0).
    pub alpha_bi: f64,
    /// SLO-violation ceiling used when binary-searching α (§3.4: 5 %).
    pub tuning_violation_threshold: f64,
    /// Maximum channels a single Harvest/Make_Harvestable action can name
    /// (sets the discrete action-head sizes).
    pub max_action_channels: usize,
}

impl Default for FleetIoConfig {
    fn default() -> Self {
        FleetIoConfig {
            engine: EngineConfig::default(),
            decision_interval: SimDuration::from_secs(2),
            beta: 0.6,
            learning_rate: 1e-4,
            gamma: 0.9,
            hidden_layers: vec![50, 50],
            batch_size: 32,
            history_windows: 3,
            slo_violation_guarantee: 0.01,
            unified_alpha: 0.01,
            alpha_lc1: 2.5e-2,
            alpha_lc2: 5e-3,
            alpha_bi: 0.0,
            tuning_violation_threshold: 0.05,
            max_action_channels: 8,
        }
    }
}

impl FleetIoConfig {
    /// Observation length: 11 states per window × history windows
    /// (§3.3.1: 9 Table 1 states + 2 shared states).
    pub fn obs_dim(&self) -> usize {
        crate::states::STATES_PER_WINDOW * self.history_windows
    }

    /// Discrete action-head sizes: harvest level, make-harvestable level
    /// (each `0..=max_action_channels` channels), and 3 priority levels.
    pub fn action_dims(&self) -> Vec<usize> {
        vec![
            self.max_action_channels + 1,
            self.max_action_channels + 1,
            3,
        ]
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field (including engine
    /// validation).
    pub fn validate(&self) -> Result<(), String> {
        self.engine.validate()?;
        if self.decision_interval.is_zero() {
            return Err("decision_interval must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.beta) {
            return Err("beta must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err("gamma must be in [0, 1]".into());
        }
        if self.history_windows == 0 {
            return Err("history_windows must be positive".into());
        }
        for (name, a) in [
            ("unified_alpha", self.unified_alpha),
            ("alpha_lc1", self.alpha_lc1),
            ("alpha_lc2", self.alpha_lc2),
            ("alpha_bi", self.alpha_bi),
        ] {
            if !(0.0..=1.0).contains(&a) {
                return Err(format!("{name} must be in [0, 1]"));
            }
        }
        if self.max_action_channels == 0 {
            return Err("max_action_channels must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_3() {
        let c = FleetIoConfig::default();
        assert_eq!(c.decision_interval, SimDuration::from_secs(2));
        assert!((c.beta - 0.6).abs() < 1e-12);
        assert!((f64::from(c.learning_rate) - 1e-4).abs() < 1e-9);
        assert!((c.gamma - 0.9).abs() < 1e-12);
        assert_eq!(c.hidden_layers, vec![50, 50]);
        assert_eq!(c.batch_size, 32);
        // §3.3.1: 11 states × 3 windows.
        assert_eq!(c.obs_dim(), 33);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn alphas_match_section_3_8() {
        let c = FleetIoConfig::default();
        assert!((c.alpha_lc1 - 2.5e-2).abs() < 1e-12);
        assert!((c.alpha_lc2 - 5e-3).abs() < 1e-12);
        assert_eq!(c.alpha_bi, 0.0);
        assert!((c.unified_alpha - 0.01).abs() < 1e-12);
    }

    #[test]
    fn action_dims_cover_actions_table_2() {
        let c = FleetIoConfig::default();
        // Harvest, Make_Harvestable, Set_Priority.
        assert_eq!(c.action_dims().len(), 3);
        assert_eq!(c.action_dims()[2], 3);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = FleetIoConfig {
            beta: 2.0,
            ..FleetIoConfig::default()
        };
        assert!(c.validate().is_err());
        c = FleetIoConfig::default();
        c.history_windows = 0;
        assert!(c.validate().is_err());
        c = FleetIoConfig::default();
        c.alpha_lc1 = -0.1;
        assert!(c.validate().is_err());
    }
}
