//! Serializable run specifications for the deterministic run store.
//!
//! A [`RunSpec`] is everything `fleetio-store` needs to *re-create* a
//! recorded collocation run bit-identically: the flash preset, every
//! tenant's vSSD configuration + workload + seed, the decision window,
//! warm-up fraction, window count and checkpoint cadence. The spec is
//! embedded (binary-encoded via the `FIOM` payload codec) in the run
//! manifest, and its CRC-32 [`RunSpec::fingerprint`] is pinned in every
//! replay anchor — so `replay` can refuse to "verify" a store against a
//! run built from different parameters.
//!
//! Only *presets* of the engine configuration are serialized (the flash
//! geometry enum plus engine defaults), not arbitrary `EngineConfig`
//! values: the spec must stay honest about what it can rebuild. Runs
//! driven by hand-tuned engine knobs are out of the store's replay scope
//! (see DESIGN.md "Run store" caveats).

use fleetio_des::SimDuration;
use fleetio_flash::addr::ChannelId;
use fleetio_flash::config::FlashConfig;
use fleetio_model::codec::{Dec, DecodeError, Enc};
use fleetio_vssd::engine::EngineConfig;
use fleetio_vssd::vssd::{IsolationMode, VssdConfig, VssdId};
use fleetio_workloads::WorkloadKind;

use crate::driver::{Colocation, TenantSpec};

/// Named flash geometries a stored run can be rebuilt from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashPreset {
    /// [`FlashConfig::paper_default`] (the crate default).
    Default,
    /// [`FlashConfig::experiment_default`].
    Experiment,
    /// [`FlashConfig::training_test`] (4 channels, CI scale).
    TrainingTest,
    /// [`FlashConfig::small_test`].
    SmallTest,
}

impl FlashPreset {
    fn tag(self) -> u8 {
        match self {
            FlashPreset::Default => 0,
            FlashPreset::Experiment => 1,
            FlashPreset::TrainingTest => 2,
            FlashPreset::SmallTest => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, DecodeError> {
        match tag {
            0 => Ok(FlashPreset::Default),
            1 => Ok(FlashPreset::Experiment),
            2 => Ok(FlashPreset::TrainingTest),
            3 => Ok(FlashPreset::SmallTest),
            other => Err(DecodeError::Malformed(format!("flash preset tag {other}"))),
        }
    }

    /// The geometry this preset names.
    pub fn config(self) -> FlashConfig {
        match self {
            FlashPreset::Default => FlashConfig::paper_default(),
            FlashPreset::Experiment => FlashConfig::experiment_default(),
            FlashPreset::TrainingTest => FlashConfig::training_test(),
            FlashPreset::SmallTest => FlashConfig::small_test(),
        }
    }
}

/// A self-contained, serializable description of one recordable run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Flash geometry preset (engine knobs ride their defaults).
    pub flash: FlashPreset,
    /// Tenants: vSSD configuration + workload + per-tenant seed.
    pub tenants: Vec<TenantSpec>,
    /// Decision-window length.
    pub window: SimDuration,
    /// Pre-fill fraction before recording starts.
    pub warm_fraction: f64,
    /// Decision windows to run.
    pub windows: u32,
    /// Write a replay anchor every this many windows (0 = no anchors).
    pub checkpoint_every: u32,
    /// Top-level seed the tenant seeds were derived from (provenance;
    /// the per-tenant seeds are what actually drive the workloads).
    pub seed: u64,
}

impl RunSpec {
    /// A small four-tenant mixed scenario at CI scale (training-test
    /// flash, 500 ms windows) — the default subject for `fleetio-store
    /// record` and the ingest benchmark. Same shape as
    /// `examples/trace_colocation.rs`: two latency-sensitive and two
    /// bandwidth-intensive tenants, one hardware-isolated channel each.
    pub fn demo(seed: u64, windows: u32, checkpoint_every: u32) -> Self {
        let kinds = [
            WorkloadKind::Ycsb,
            WorkloadKind::Tpce,
            WorkloadKind::TeraSort,
            WorkloadKind::MlPrep,
        ];
        let slo = SimDuration::from_millis(2);
        let tenants = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                let mut vc = VssdConfig::hardware(VssdId(i as u32), vec![ChannelId(i as u16)]);
                if i < 2 {
                    vc.slo = Some(slo);
                }
                let mut t = TenantSpec::new(vc, kind, seed.wrapping_add(i as u64 * 31));
                if i < 2 {
                    // Latency-sensitive tenants also carry a window-level
                    // SLO (p95 at the scheduling deadline, p99 relaxed).
                    t.slo_spec = Some(fleetio_obs::SloSpec::latency(
                        slo,
                        SimDuration::from_millis(5),
                    ));
                }
                t
            })
            .collect();
        RunSpec {
            flash: FlashPreset::TrainingTest,
            tenants,
            window: SimDuration::from_millis(500),
            warm_fraction: 0.9,
            windows,
            checkpoint_every,
            seed,
        }
    }

    /// Encodes the spec as a flat `FIOM`-style payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u8(self.flash.tag());
        enc.u64(self.window.as_nanos());
        enc.f64(self.warm_fraction);
        enc.u32(self.windows);
        enc.u32(self.checkpoint_every);
        enc.u64(self.seed);
        enc.usize(self.tenants.len());
        for t in &self.tenants {
            enc.str(t.kind.name());
            enc.u64(t.seed);
            enc.u32(t.config.id.0);
            enc.usize(t.config.channels.len());
            for c in &t.config.channels {
                enc.u32(u32::from(c.0));
            }
            enc.u8(match t.config.isolation {
                IsolationMode::Hardware => 0,
                IsolationMode::Software => 1,
            });
            match t.config.slo {
                Some(slo) => {
                    enc.bool(true);
                    enc.u64(slo.as_nanos());
                }
                None => enc.bool(false),
            }
            match t.config.rate_limit {
                Some(r) => {
                    enc.bool(true);
                    enc.f64(r);
                }
                None => enc.bool(false),
            }
            enc.u32(t.config.tickets);
            enc.f64(t.config.capacity_share);
            match &t.slo_spec {
                Some(s) => {
                    enc.bool(true);
                    enc.u64(s.p95_target.as_nanos());
                    enc.u64(s.p99_target.as_nanos());
                    enc.f64(s.throughput_floor);
                }
                None => enc.bool(false),
            }
        }
        enc.into_bytes()
    }

    /// Decodes a spec written by [`RunSpec::encode`].
    ///
    /// # Errors
    ///
    /// Truncation, trailing bytes, unknown preset/workload names, or
    /// out-of-range field values.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Dec::new(payload);
        let flash = FlashPreset::from_tag(dec.u8()?)?;
        let window = SimDuration::from_nanos(dec.u64()?);
        let warm_fraction = dec.f64()?;
        if !(0.0..=1.0).contains(&warm_fraction) {
            return Err(DecodeError::Malformed(format!(
                "warm fraction {warm_fraction}"
            )));
        }
        let windows = dec.u32()?;
        let checkpoint_every = dec.u32()?;
        let seed = dec.u64()?;
        let n_tenants = dec.usize()?;
        if n_tenants > 4096 {
            return Err(DecodeError::Malformed(format!(
                "implausible tenant count {n_tenants}"
            )));
        }
        let mut tenants = Vec::with_capacity(n_tenants);
        for _ in 0..n_tenants {
            let kind_name = dec.str()?;
            let kind = WorkloadKind::from_name(&kind_name)
                .ok_or_else(|| DecodeError::Malformed(format!("unknown workload {kind_name}")))?;
            let t_seed = dec.u64()?;
            let id = VssdId(dec.u32()?);
            let n_channels = dec.usize()?;
            if n_channels > u16::MAX as usize {
                return Err(DecodeError::Malformed(format!(
                    "implausible channel count {n_channels}"
                )));
            }
            let mut channels = Vec::with_capacity(n_channels);
            for _ in 0..n_channels {
                let c = dec.u32()?;
                if c > u32::from(u16::MAX) {
                    return Err(DecodeError::Malformed(format!("channel id {c}")));
                }
                channels.push(ChannelId(c as u16));
            }
            let isolation = match dec.u8()? {
                0 => IsolationMode::Hardware,
                1 => IsolationMode::Software,
                other => {
                    return Err(DecodeError::Malformed(format!("isolation tag {other}")));
                }
            };
            let slo = if dec.bool()? {
                Some(SimDuration::from_nanos(dec.u64()?))
            } else {
                None
            };
            let rate_limit = if dec.bool()? { Some(dec.f64()?) } else { None };
            let tickets = dec.u32()?;
            let capacity_share = dec.f64()?;
            if !(capacity_share > 0.0 && capacity_share <= 1.0) {
                return Err(DecodeError::Malformed(format!(
                    "capacity share {capacity_share}"
                )));
            }
            let slo_spec = if dec.bool()? {
                let s = fleetio_obs::SloSpec {
                    p95_target: SimDuration::from_nanos(dec.u64()?),
                    p99_target: SimDuration::from_nanos(dec.u64()?),
                    throughput_floor: dec.f64()?,
                };
                s.validate().map_err(DecodeError::Malformed)?;
                Some(s)
            } else {
                None
            };
            let mut tenant = TenantSpec::new(
                VssdConfig {
                    id,
                    channels,
                    isolation,
                    slo,
                    rate_limit,
                    tickets,
                    capacity_share,
                },
                kind,
                t_seed,
            );
            tenant.slo_spec = slo_spec;
            tenants.push(tenant);
        }
        dec.finish()?;
        Ok(RunSpec {
            flash,
            tenants,
            window,
            warm_fraction,
            windows,
            checkpoint_every,
            seed,
        })
    }

    /// CRC-32 of the spec's encoding — the config fingerprint stored in
    /// the run manifest and every replay anchor.
    pub fn fingerprint(&self) -> u32 {
        fleetio_des::hash::crc32(&self.encode())
    }

    /// Builds the collocation this spec describes. The caller installs
    /// an obs sink, runs `warm_up(self.warm_fraction)` and drives
    /// `self.windows` windows — `fleetio-store`'s record and replay
    /// paths both go through here, which is what makes them comparable.
    ///
    /// # Panics
    ///
    /// Panics on configurations the engine rejects (mismatched
    /// channels, zero window — see [`Colocation::new`]).
    pub fn build(&self) -> Colocation {
        let engine_cfg = EngineConfig {
            flash: self.flash.config(),
            ..EngineConfig::default()
        };
        Colocation::new(engine_cfg, self.tenants.clone(), self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_spec_round_trips() {
        let spec = RunSpec::demo(42, 6, 2);
        let bytes = spec.encode();
        let back = RunSpec::decode(&bytes).expect("fresh spec decodes");
        assert_eq!(back, spec);
        assert_eq!(back.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn fingerprint_changes_with_seed() {
        let a = RunSpec::demo(42, 6, 2);
        let b = RunSpec::demo(43, 6, 2);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn corruption_never_panics() {
        let bytes = RunSpec::demo(7, 4, 1).encode();
        for cut in 0..bytes.len() {
            assert!(RunSpec::decode(&bytes[..cut]).is_err());
        }
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x04;
            let _ = RunSpec::decode(&bad); // must not panic
        }
    }

    #[test]
    fn software_tenant_round_trips() {
        let mut spec = RunSpec::demo(1, 2, 0);
        let mut vc = VssdConfig::software(VssdId(9), vec![ChannelId(0), ChannelId(1)])
            .with_rate_limit(1.5e8)
            .with_capacity_share(0.5);
        vc.tickets = 250;
        spec.tenants
            .push(TenantSpec::new(vc, WorkloadKind::PageRank, 77));
        let back = RunSpec::decode(&spec.encode()).expect("decodes");
        assert_eq!(back, spec);
    }
}
