//! Table 5: workload combinations for the scalability experiments.

use fleetio_workloads::WorkloadKind;

/// One Table 5 mix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    /// The paper's label (mix1 … mix5).
    pub label: &'static str,
    /// The collocated workloads, one per vSSD.
    pub workloads: Vec<WorkloadKind>,
}

impl Mix {
    /// Number of vSSDs in the mix.
    pub fn n_vssds(&self) -> usize {
        self.workloads.len()
    }
}

/// All five Table 5 mixes.
///
/// # Example
///
/// ```
/// let mixes = fleetio::mixes::table5_mixes();
/// assert_eq!(mixes.len(), 5);
/// assert_eq!(mixes[4].n_vssds(), 8); // mix5
/// ```
pub fn table5_mixes() -> Vec<Mix> {
    use WorkloadKind::*;
    vec![
        Mix {
            label: "mix1",
            workloads: vec![VdiWeb, TeraSort],
        },
        Mix {
            label: "mix2",
            workloads: vec![Ycsb, PageRank],
        },
        Mix {
            label: "mix3",
            workloads: vec![VdiWeb, VdiWeb, TeraSort, TeraSort],
        },
        Mix {
            label: "mix4",
            workloads: vec![VdiWeb, Ycsb, TeraSort, PageRank],
        },
        Mix {
            label: "mix5",
            workloads: vec![
                VdiWeb, VdiWeb, VdiWeb, VdiWeb, TeraSort, TeraSort, PageRank, MlPrep,
            ],
        },
    ]
}

/// The six §4.2 evaluation pairs: every latency-sensitive × bandwidth-
/// intensive combination of Table 4.
pub fn evaluation_pairs() -> Vec<(WorkloadKind, WorkloadKind)> {
    use WorkloadKind::*;
    let lc = [VdiWeb, Ycsb];
    let bi = [TeraSort, MlPrep, PageRank];
    lc.iter()
        .flat_map(|l| bi.iter().map(move |b| (*l, *b)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_workloads::WorkloadCategory;

    #[test]
    fn table5_shapes_match_paper() {
        let mixes = table5_mixes();
        assert_eq!(mixes.len(), 5);
        let sizes: Vec<usize> = mixes.iter().map(Mix::n_vssds).collect();
        assert_eq!(sizes, vec![2, 2, 4, 4, 8]);
        assert_eq!(mixes[0].label, "mix1");
        // mix5: 4 VDI-Web, 2 TeraSort, PageRank, ML Prep.
        let m5 = &mixes[4];
        let vdi = m5
            .workloads
            .iter()
            .filter(|w| **w == WorkloadKind::VdiWeb)
            .count();
        let tera = m5
            .workloads
            .iter()
            .filter(|w| **w == WorkloadKind::TeraSort)
            .count();
        assert_eq!((vdi, tera), (4, 2));
    }

    #[test]
    fn evaluation_pairs_cover_all_six() {
        let pairs = evaluation_pairs();
        assert_eq!(pairs.len(), 6);
        for (lc, bi) in pairs {
            assert_eq!(lc.category(), WorkloadCategory::LatencySensitive);
            assert_eq!(bi.category(), WorkloadCategory::BandwidthIntensive);
        }
    }
}
