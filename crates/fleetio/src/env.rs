//! The RL environment over a collocation.
//!
//! One step = one 2-second decision window: actions are applied (priority
//! immediately, harvest actions through admission control), the window
//! runs, Table 1 states are extracted per agent, and rewards follow
//! Equation 1 mixed by Equation 2.

use fleetio_des::SimDuration;
use fleetio_rl::env::{MultiAgentEnv, StepResult};
use fleetio_rl::reward::mix_rewards;
use fleetio_vssd::engine::EngineConfig;

use crate::actions::AgentAction;
use crate::config::FleetIoConfig;
use crate::driver::{Colocation, TenantSpec};
use crate::reward::RewardParams;
use crate::states::{StateHistory, StateVector};

/// A FleetIO training/evaluation environment.
#[derive(Debug)]
pub struct FleetIoEnv {
    cfg: FleetIoConfig,
    tenants: Vec<TenantSpec>,
    warm_fraction: f64,
    horizon_windows: usize,
    coloc: Colocation,
    histories: Vec<StateHistory>,
    rewards: Vec<RewardParams>,
    windows_done: usize,
    episode: u64,
    seed: u64,
    /// Keep the engine running across episodes (the storage system is a
    /// continuing task; rebuilding + re-warming per episode is both
    /// unrealistic and expensive). Set false to get fresh devices.
    persistent: bool,
}

impl FleetIoEnv {
    /// Builds an environment over `tenants` with per-tenant reward
    /// parameters (α per workload type).
    ///
    /// # Panics
    ///
    /// Panics on invalid configurations or if `rewards` does not match
    /// `tenants`.
    pub fn new(
        cfg: FleetIoConfig,
        tenants: Vec<TenantSpec>,
        rewards: Vec<RewardParams>,
        warm_fraction: f64,
        horizon_windows: usize,
        seed: u64,
    ) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid FleetIO config: {e}");
        }
        assert_eq!(tenants.len(), rewards.len(), "one RewardParams per tenant");
        assert!(horizon_windows > 0, "horizon must be positive");
        let coloc = Self::build(
            &cfg.engine,
            &tenants,
            cfg.decision_interval,
            warm_fraction,
            seed,
            0,
        );
        let histories = tenants
            .iter()
            .map(|_| StateHistory::new(cfg.history_windows))
            .collect();
        FleetIoEnv {
            cfg,
            tenants,
            warm_fraction,
            horizon_windows,
            coloc,
            histories,
            rewards,
            windows_done: 0,
            episode: 0,
            seed,
            persistent: true,
        }
    }

    /// Makes every `reset` rebuild a fresh, re-warmed device instead of
    /// continuing the running one (builder style).
    pub fn with_fresh_episodes(mut self) -> Self {
        self.persistent = false;
        self
    }

    /// Default reward parameters for a tenant list: α from each workload's
    /// category using the paper's fine-tuned values.
    pub fn default_rewards(cfg: &FleetIoConfig, tenants: &[TenantSpec]) -> Vec<RewardParams> {
        tenants
            .iter()
            .map(|t| {
                let alpha = crate::typing::alpha_for_kind(cfg, t.kind);
                RewardParams::new(
                    alpha.max(0.0),
                    t.config.channels.len(),
                    cfg.engine.flash.channel_peak_bytes_per_sec(),
                    cfg.slo_violation_guarantee,
                )
            })
            .collect()
    }

    fn build(
        engine_cfg: &EngineConfig,
        tenants: &[TenantSpec],
        window: SimDuration,
        warm_fraction: f64,
        seed: u64,
        episode: u64,
    ) -> Colocation {
        let respawned: Vec<TenantSpec> = tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let mut t = t.clone();
                t.seed = fleetio_des::rng::derive_seed_indexed(
                    seed ^ t.seed,
                    "env-tenant",
                    episode * 64 + i as u64,
                );
                t
            })
            .collect();
        let mut coloc = Colocation::new(engine_cfg.clone(), respawned, window);
        if warm_fraction > 0.0 {
            coloc.warm_up(warm_fraction);
        }
        coloc
    }

    /// The underlying collocation (e.g. for metric collection).
    pub fn colocation(&self) -> &Colocation {
        &self.coloc
    }

    /// Mutable access to the collocation.
    pub fn colocation_mut(&mut self) -> &mut Colocation {
        &mut self.coloc
    }

    /// Overrides one tenant's reward parameters (for α fine-tuning).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_reward_params(&mut self, idx: usize, params: RewardParams) {
        self.rewards[idx] = params;
    }

    /// Applies decoded actions and advances one window, returning the raw
    /// per-agent states alongside the step result (for deployment loops
    /// that need the un-normalized states).
    pub fn step_decoded(&mut self, actions: &[AgentAction]) -> (Vec<StateVector>, StepResult) {
        assert_eq!(actions.len(), self.tenants.len(), "one action per agent");
        let ids = self.coloc.tenant_ids();
        let ch_bw = self.coloc.engine().channel_peak_bytes_per_sec();
        for (id, action) in ids.iter().zip(actions) {
            let engine = self.coloc.engine_mut();
            engine.set_priority(*id, action.priority);
            engine.submit_action(action.make_harvestable_action(*id, ch_bw));
            engine.submit_action(action.harvest_action(*id, ch_bw));
        }
        let summaries = self.coloc.run_window();
        self.windows_done += 1;

        // Shared states: sums across collocated agents (§3.3.1).
        let total_iops: f64 = summaries.iter().map(|(_, w)| w.avg_iops).sum();
        let total_vio: f64 = summaries.iter().map(|(_, w)| w.slo_violation_rate).sum();

        let mut states = Vec::with_capacity(ids.len());
        let mut rewards = Vec::with_capacity(ids.len());
        for (i, (id, window)) in summaries.iter().enumerate() {
            let snap = self.coloc.engine().snapshot(*id);
            let state = StateVector::from_window(
                window,
                &snap,
                total_iops - window.avg_iops,
                total_vio - window.slo_violation_rate,
            );
            self.histories[i].push(state);
            states.push(state);
            rewards.push(self.rewards[i].reward(window.avg_bandwidth, window.slo_violation_rate));
        }
        let mixed = mix_rewards(&rewards, self.cfg.beta);
        let observations = self
            .histories
            .iter()
            .map(StateHistory::observation)
            .collect();
        let done = self.windows_done >= self.horizon_windows;
        (
            states,
            StepResult {
                observations,
                rewards: mixed,
                done,
            },
        )
    }
}

impl MultiAgentEnv for FleetIoEnv {
    fn n_agents(&self) -> usize {
        self.tenants.len()
    }

    fn obs_dim(&self) -> usize {
        self.cfg.obs_dim()
    }

    fn action_dims(&self) -> Vec<usize> {
        self.cfg.action_dims()
    }

    fn reset(&mut self) -> Vec<Vec<f32>> {
        self.episode += 1;
        if !self.persistent || self.episode == 1 {
            self.coloc = Self::build(
                &self.cfg.engine,
                &self.tenants,
                self.cfg.decision_interval,
                self.warm_fraction,
                self.seed,
                self.episode,
            );
        }
        self.windows_done = 0;
        for h in &mut self.histories {
            h.reset();
        }
        // One throwaway window seeds the history with real traffic.
        let idle: Vec<AgentAction> = self.tenants.iter().map(|_| AgentAction::idle()).collect();
        let (_, step) = self.step_decoded(&idle);
        self.windows_done = 0;
        step.observations
    }

    fn step(&mut self, actions: &[Vec<usize>]) -> StepResult {
        let decoded: Vec<AgentAction> = actions
            .iter()
            .map(|heads| AgentAction::from_heads(heads))
            .collect();
        self.step_decoded(&decoded).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleetio_flash::addr::ChannelId;
    use fleetio_flash::config::FlashConfig;
    use fleetio_vssd::request::Priority;
    use fleetio_vssd::vssd::{VssdConfig, VssdId};
    use fleetio_workloads::WorkloadKind;

    fn tiny_cfg() -> FleetIoConfig {
        let mut cfg = FleetIoConfig::default();
        cfg.engine.flash = FlashConfig::training_test();
        cfg.decision_interval = SimDuration::from_millis(500);
        cfg
    }

    fn tenants() -> Vec<TenantSpec> {
        vec![
            TenantSpec::new(
                VssdConfig::hardware(VssdId(0), vec![ChannelId(0), ChannelId(1)])
                    .with_slo(SimDuration::from_millis(2)),
                WorkloadKind::Ycsb,
                1,
            ),
            TenantSpec::new(
                VssdConfig::hardware(VssdId(1), vec![ChannelId(2), ChannelId(3)]),
                WorkloadKind::TeraSort,
                2,
            ),
        ]
    }

    fn env() -> FleetIoEnv {
        let cfg = tiny_cfg();
        let t = tenants();
        let rewards = FleetIoEnv::default_rewards(&cfg, &t);
        FleetIoEnv::new(cfg, t, rewards, 0.0, 4, 99)
    }

    #[test]
    fn reset_produces_observations() {
        let mut e = env();
        let obs = e.reset();
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].len(), 33);
        // The seeded window put real traffic into the newest slice.
        let newest = &obs[0][22..33];
        assert!(newest.iter().any(|v| *v != 0.0), "observation all zero");
    }

    #[test]
    fn step_applies_priority_and_returns_rewards() {
        let mut e = env();
        e.reset();
        let actions = vec![
            vec![0usize, 0, 2], // YCSB: high priority
            vec![2, 0, 1],      // TeraSort: harvest 2 channels
        ];
        let result = e.step(&actions);
        assert_eq!(result.rewards.len(), 2);
        assert!(!result.done);
        assert_eq!(
            e.colocation().engine().snapshot(VssdId(0)).priority,
            Priority::High
        );
        // Rewards are finite and the BI tenant earns bandwidth reward.
        assert!(result.rewards.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn episode_terminates_at_horizon() {
        let mut e = env();
        e.reset();
        let idle = vec![vec![0usize, 0, 1], vec![0, 0, 1]];
        for i in 0..4 {
            let r = e.step(&idle);
            assert_eq!(r.done, i == 3, "window {i}");
        }
    }

    #[test]
    fn harvest_actions_take_effect_after_admission() {
        let mut e = env();
        e.reset();
        // Tenant 0 offers 2 channels, tenant 1 harvests 2.
        let actions = vec![vec![0usize, 2, 1], vec![2, 0, 1]];
        e.step(&actions);
        // After one 500 ms window the 50 ms admission batch has long run.
        let snap = e.colocation().engine().snapshot(VssdId(1));
        assert_eq!(snap.harvested_channels, 2);
    }

    #[test]
    fn default_rewards_use_category_alphas() {
        let cfg = tiny_cfg();
        let t = tenants();
        let r = FleetIoEnv::default_rewards(&cfg, &t);
        // YCSB is LC-2 → α = 5e-3; TeraSort is BI → α = 0.
        assert!((r[0].alpha - cfg.alpha_lc2).abs() < 1e-12);
        assert_eq!(r[1].alpha, 0.0);
    }
}
