//! Umbrella crate for the FleetIO reproduction workspace.
//!
//! Re-exports every workspace crate so the `examples/` and `tests/` at the
//! repository root can reach the whole system through one dependency.

pub use fleetio;
pub use fleetio_des as des;
pub use fleetio_flash as flash;
pub use fleetio_fleet as fleet;
pub use fleetio_ml as ml;
pub use fleetio_model as model;
pub use fleetio_obs as obs;
pub use fleetio_rl as rl;
pub use fleetio_store as store;
pub use fleetio_vssd as vssd;
pub use fleetio_workloads as workloads;
