//! Same-seed determinism regression tests.
//!
//! The simulator's claim is bit-for-bit reproducibility: two runs from the
//! same seed must produce *identical* results — not statistically similar
//! ones — including through the parallel rollout path, where thread timing
//! must not leak into the merged buffer. These tests compare full `Debug`
//! renderings, so any drifting counter, timestamp, or float fails loudly.
//!
//! Run them with `--features audit` to additionally route every simulated
//! event through the runtime invariant auditor (event-time monotonicity,
//! free-block accounting, gSB conservation, token-bucket bounds).

use fleetio_suite::des::rng::SmallRng;
use fleetio_suite::des::SimDuration;
use fleetio_suite::flash::config::FlashConfig;
use fleetio_suite::fleetio::baselines::HeuristicPolicy;
use fleetio_suite::fleetio::driver::Colocation;
use fleetio_suite::fleetio::env::FleetIoEnv;
use fleetio_suite::fleetio::experiment::{
    hardware_layout, measure_device_peak, run_collocation, ExperimentOptions,
};
use fleetio_suite::fleetio::FleetIoConfig;
use fleetio_suite::rl::normalize::ObsNormalizer;
use fleetio_suite::rl::parallel::collect_parallel;
use fleetio_suite::rl::policy::PpoPolicy;
use fleetio_suite::rl::ppo::{PpoConfig, PpoTrainer};
use fleetio_suite::workloads::WorkloadKind;

fn small_cfg() -> FleetIoConfig {
    let mut cfg = FleetIoConfig::default();
    cfg.engine.flash = FlashConfig::training_test();
    cfg.decision_interval = SimDuration::from_millis(500);
    cfg
}

/// One full heuristic collocation run (two mixed tenants, harvesting, GC,
/// admission control), rendered to a string. Any nondeterminism anywhere in
/// the stack shows up as a difference between two calls.
fn heuristic_run_fingerprint(seed: u64) -> String {
    let cfg = small_cfg();
    let opts = ExperimentOptions {
        cfg: cfg.clone(),
        measure_windows: 4,
        ramp_windows: 1,
        warm_fraction: 0.4,
        seed,
    };
    let peak = measure_device_peak(&cfg, 5);
    let pair = [WorkloadKind::Tpce, WorkloadKind::TeraSort];
    let tenants = hardware_layout(&cfg, &pair, &[None, None], seed);
    let mut policy = HeuristicPolicy::new(
        cfg.clone(),
        &[(2, WorkloadKind::Tpce), (2, WorkloadKind::TeraSort)],
    );
    let metrics = run_collocation(&mut policy, tenants, &opts, peak, None);
    format!("peak={peak:?} metrics={metrics:?}")
}

#[test]
fn serial_runs_are_bit_identical() {
    let a = heuristic_run_fingerprint(11);
    let b = heuristic_run_fingerprint(11);
    assert!(a == b, "same-seed runs diverged:\n{a}\nvs\n{b}");
    // Different seeds must actually change the simulation, or the
    // fingerprint is vacuous.
    let c = heuristic_run_fingerprint(12);
    assert!(a != c, "seed change did not affect the run fingerprint");
}

/// One parallel rollout collection (two worker envs on their own threads),
/// rendered to a string.
fn parallel_rollout_fingerprint(seed: u64) -> String {
    let cfg = small_cfg();
    let pair = [WorkloadKind::Ycsb, WorkloadKind::TeraSort];
    let factories: Vec<_> = (0..2u64)
        .map(|worker| {
            let cfg = cfg.clone();
            let tenants = hardware_layout(&cfg, &pair, &[None, None], seed ^ worker);
            move || {
                let rewards = FleetIoEnv::default_rewards(&cfg, &tenants);
                FleetIoEnv::new(cfg.clone(), tenants, rewards, 0.3, 4, seed ^ worker)
            }
        })
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let policy = PpoPolicy::new(cfg.obs_dim(), &cfg.action_dims(), &[16, 16], &mut rng);
    let mut normalizer = ObsNormalizer::new(cfg.obs_dim(), 5.0);
    normalizer.freeze();
    let buffer = collect_parallel(factories, &policy, &normalizer, 3, 0.99, seed);
    assert!(
        !buffer.is_empty(),
        "parallel collection produced no transitions"
    );
    format!("{:?}", buffer.transitions())
}

#[test]
fn parallel_rollouts_are_bit_identical() {
    let a = parallel_rollout_fingerprint(23);
    let b = parallel_rollout_fingerprint(23);
    assert!(a == b, "same-seed parallel rollouts diverged");
    let c = parallel_rollout_fingerprint(24);
    assert!(a != c, "seed change did not affect the parallel rollout");
}

/// One traced colocation run, returned as its full JSONL event stream.
/// Every simulated timestamp, request id, GC job, and byte count appears
/// in the stream, so it is a much finer-grained fingerprint than the
/// summary metrics above.
fn traced_run_jsonl(seed: u64) -> String {
    use fleetio_suite::obs::RecordingSink;

    let cfg = small_cfg();
    let tenants = hardware_layout(
        &cfg,
        &[WorkloadKind::Tpce, WorkloadKind::TeraSort],
        &[None, None],
        seed,
    );
    let mut coloc = Colocation::new(cfg.engine.clone(), tenants, cfg.decision_interval);
    coloc.set_obs_sink(Box::new(RecordingSink::with_capacity(1 << 21)));
    coloc.warm_up(0.4);
    coloc.run_windows(3);
    let sink = coloc
        .take_obs_sink()
        .into_any()
        .downcast::<RecordingSink>()
        .expect("a RecordingSink was installed above");
    assert_eq!(sink.dropped(), 0, "trace ring evicted events");
    sink.to_jsonl()
}

/// The observability layer's determinism claim: same seed → byte-identical
/// JSONL event stream, not just identical summary metrics.
#[test]
fn traced_event_streams_are_byte_identical() {
    let a = traced_run_jsonl(41);
    let b = traced_run_jsonl(41);
    assert!(!a.is_empty(), "traced run produced no events");
    assert!(
        a.len() > 10_000,
        "suspiciously small trace ({} bytes)",
        a.len()
    );
    assert!(a == b, "same-seed traced runs diverged");
    let c = traced_run_jsonl(42);
    assert!(a != c, "seed change did not affect the event stream");
}

/// FNV-1a 64-bit, the golden-fingerprint hash (stable, dependency-free).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Golden fingerprints captured from the pre-calendar-queue, pre-slab
/// engine (BinaryHeap event queue, BTreeMap request/block state). The DES
/// hot-path overhaul claims *byte identity*, not statistical equivalence:
/// every request id, timestamp, and GC decision must land exactly where
/// the reference implementation put it. If an intentional behavior change
/// ever breaks these, recapture the hashes in the same commit and say so.
#[test]
fn engine_runs_match_pre_overhaul_goldens() {
    let a = heuristic_run_fingerprint(11);
    assert_eq!(a.len(), 573, "seed-11 fingerprint length drifted");
    assert_eq!(
        fnv64(a.as_bytes()),
        0x941f_0994_2085_8eb8,
        "seed-11 heuristic run diverged from the pre-overhaul engine"
    );
    let b = heuristic_run_fingerprint(12);
    assert_eq!(b.len(), 572, "seed-12 fingerprint length drifted");
    assert_eq!(
        fnv64(b.as_bytes()),
        0xddd8_3ace_35d0_669e,
        "seed-12 heuristic run diverged from the pre-overhaul engine"
    );
    let t = traced_run_jsonl(41);
    assert_eq!(t.len(), 5_218_495, "seed-41 trace length drifted");
    assert_eq!(
        fnv64(t.as_bytes()),
        0xfdeb_2b2b_6e9a_4df3,
        "seed-41 traced event stream diverged from the pre-overhaul engine"
    );
}

/// A small FleetIO training environment for checkpoint-resume tests.
fn training_env(seed: u64) -> FleetIoEnv {
    let cfg = small_cfg();
    let tenants = hardware_layout(
        &cfg,
        &[WorkloadKind::Tpce, WorkloadKind::TeraSort],
        &[None, None],
        seed,
    );
    let rewards = FleetIoEnv::default_rewards(&cfg, &tenants);
    // Fresh device per episode: the training-test device is far too small
    // to absorb many windows of sustained writes on one instance.
    FleetIoEnv::new(cfg.clone(), tenants, rewards, 0.3, 4, seed).with_fresh_episodes()
}

fn fresh_trainer(seed: u64) -> PpoTrainer {
    let cfg = small_cfg();
    let mut rng = SmallRng::seed_from_u64(seed);
    let policy = PpoPolicy::new(cfg.obs_dim(), &cfg.action_dims(), &[16, 16], &mut rng);
    let ppo = PpoConfig {
        epochs: 2,
        minibatch: 8,
        ..PpoConfig::default()
    };
    PpoTrainer::new(policy, cfg.obs_dim(), ppo, seed)
}

/// The checkpoint format's determinism claim: interrupting training with a
/// full serialize → container-encode → decode → restore round trip, then
/// continuing, is bit-identical to never having stopped. The trainer state
/// crosses the *wire format* (the same bytes `fleetio-model` writes to
/// disk), so any lossy field — a truncated float, a skipped RNG word, a
/// re-derived optimizer moment — diverges the resumed run.
#[test]
fn checkpoint_resume_is_bit_identical_to_uninterrupted_run() {
    use fleetio_suite::model::{decode_container, encode_container, ModelCheckpoint, PayloadKind};

    const TOTAL_ITERS: usize = 4;
    const SPLIT: usize = 2;
    const STEPS: usize = 4; // one horizon per iteration
    let seed = 71;

    // Run A: uninterrupted.
    let mut env = training_env(seed);
    let mut trainer = fresh_trainer(seed);
    for _ in 0..TOTAL_ITERS {
        trainer.train_iteration(&mut env, STEPS);
    }
    let uninterrupted = format!("{:?}", trainer.export_state());

    // Run B: same seed, but serialized through the on-disk container
    // format at the split point and resumed from the decoded bytes.
    let mut env = training_env(seed);
    let mut trainer = fresh_trainer(seed);
    for _ in 0..SPLIT {
        trainer.train_iteration(&mut env, STEPS);
    }
    let ckpt = fleetio_suite::fleetio::warmstart::checkpoint_from_trainer(&trainer, seed, "lc1");
    let bytes = encode_container(PayloadKind::ModelCheckpoint, &ckpt.encode());
    let (kind, payload) = decode_container(&bytes).expect("freshly encoded container decodes");
    assert_eq!(kind, PayloadKind::ModelCheckpoint);
    let restored = ModelCheckpoint::decode(payload).expect("freshly encoded payload decodes");
    assert_eq!(restored.meta.tag, "lc1");
    let mut trainer = PpoTrainer::from_state(restored.trainer)
        .expect("round-tripped trainer state is internally consistent");
    for _ in 0..TOTAL_ITERS - SPLIT {
        trainer.train_iteration(&mut env, STEPS);
    }
    let resumed = format!("{:?}", trainer.export_state());

    assert!(
        uninterrupted == resumed,
        "resume from checkpoint diverged from the uninterrupted run"
    );

    // Control: a trainer that skips the first SPLIT iterations must differ,
    // or the fingerprint is vacuous.
    let mut env = training_env(seed);
    let mut trainer = fresh_trainer(seed);
    for _ in 0..TOTAL_ITERS - SPLIT {
        trainer.train_iteration(&mut env, STEPS);
    }
    let shorter = format!("{:?}", trainer.export_state());
    assert!(
        uninterrupted != shorter,
        "fingerprint insensitive to training length"
    );
}

/// With `--features audit`, every event of these runs flows through the
/// runtime auditor; this test pins that the hooks are actually live (a
/// feature wired up but never called would silently audit nothing).
#[cfg(feature = "audit")]
#[test]
fn audit_hooks_observe_the_simulation() {
    let cfg = small_cfg();
    let tenants = hardware_layout(
        &cfg,
        &[WorkloadKind::Tpce, WorkloadKind::TeraSort],
        &[None, None],
        31,
    );
    let mut coloc = Colocation::new(cfg.engine.clone(), tenants, cfg.decision_interval);
    coloc.warm_up(0.3);
    coloc.run_windows(4);
    let (events, sweeps) = coloc.engine().audit_counts();
    assert!(events > 1_000, "auditor saw only {events} events over 2 s");
    assert!(sweeps > 0, "no structural sweep ran in {events} events");
    // A quiescent full sweep must also hold at the end of the run.
    coloc.engine().audit_sweep();
}
