//! Cross-crate integration tests: the full stack from workload generation
//! through the vSSD engine to metrics, plus the RL plumbing.

use fleetio_suite::des::{SimDuration, SimTime};
use fleetio_suite::flash::addr::ChannelId;
use fleetio_suite::flash::config::FlashConfig;
use fleetio_suite::fleetio::agent::{pretrain, PretrainOptions, ReferenceParams};
use fleetio_suite::fleetio::baselines::{HeuristicPolicy, StaticPolicy};
use fleetio_suite::fleetio::driver::{Colocation, TenantSpec};
use fleetio_suite::fleetio::experiment::{
    calibrate_slo, hardware_layout, measure_device_peak, run_collocation, software_layout,
    ExperimentOptions,
};
use fleetio_suite::fleetio::states::StateVector;
use fleetio_suite::fleetio::FleetIoConfig;
use fleetio_suite::vssd::vssd::{VssdConfig, VssdId};
use fleetio_suite::workloads::WorkloadKind;

fn small_cfg() -> FleetIoConfig {
    let mut cfg = FleetIoConfig::default();
    cfg.engine.flash = FlashConfig::training_test();
    cfg.decision_interval = SimDuration::from_millis(500);
    cfg
}

fn small_opts(cfg: &FleetIoConfig) -> ExperimentOptions {
    ExperimentOptions {
        cfg: cfg.clone(),
        measure_windows: 6,
        ramp_windows: 1,
        warm_fraction: 0.4,
        seed: 7,
    }
}

#[test]
fn workloads_drive_engine_end_to_end() {
    let cfg = small_cfg();
    let tenants = vec![
        TenantSpec::new(
            VssdConfig::hardware(VssdId(0), vec![ChannelId(0), ChannelId(1)]),
            WorkloadKind::Ycsb,
            1,
        ),
        TenantSpec::new(
            VssdConfig::hardware(VssdId(1), vec![ChannelId(2), ChannelId(3)]),
            WorkloadKind::TeraSort,
            2,
        ),
    ];
    let mut coloc = Colocation::new(cfg.engine.clone(), tenants, cfg.decision_interval);
    coloc.warm_up(0.4);
    let mut total_ops = 0;
    for _ in 0..6 {
        let s = coloc.run_window();
        total_ops += s.iter().map(|(_, w)| w.total_ops).sum::<u64>();
    }
    assert!(total_ops > 5_000, "only {total_ops} ops over 3 s");
    // Time advanced exactly six windows.
    assert_eq!(coloc.engine().now(), SimTime::from_secs(3));
}

#[test]
fn software_isolation_beats_hardware_on_utilization_but_not_latency() {
    let cfg = small_cfg();
    let opts = small_opts(&cfg);
    let peak = measure_device_peak(&cfg, 3);
    let slo = calibrate_slo(&cfg, WorkloadKind::Ycsb, 2, 3, 4);
    let pair = [WorkloadKind::Ycsb, WorkloadKind::TeraSort];

    let hw_tenants = hardware_layout(&cfg, &pair, &[Some(slo), None], 7);
    let hw = run_collocation(&mut StaticPolicy::hardware(), hw_tenants, &opts, peak, None);

    let sw_tenants = software_layout(&cfg, &pair, &[Some(slo), None], 7);
    let sw = run_collocation(&mut StaticPolicy::software(), sw_tenants, &opts, peak, None);

    // The motivation study's shape (Figures 2/3) on the small device.
    assert!(
        sw.avg_utilization > hw.avg_utilization * 1.15,
        "sw {:.3} vs hw {:.3}",
        sw.avg_utilization,
        hw.avg_utilization
    );
    assert!(
        sw.lc_p99().unwrap() > hw.lc_p99().unwrap(),
        "software isolation should hurt tail latency"
    );
}

#[test]
fn heuristic_harvesting_lands_between_the_isolation_baselines() {
    let cfg = small_cfg();
    let opts = small_opts(&cfg);
    let peak = measure_device_peak(&cfg, 5);
    // TPCE is light enough that a 2-channel share still leaves harvestable
    // headroom (VDI's bursts would not, on this small test device).
    let slo = calibrate_slo(&cfg, WorkloadKind::Tpce, 2, 3, 6);
    let pair = [WorkloadKind::Tpce, WorkloadKind::TeraSort];

    let hw_tenants = hardware_layout(&cfg, &pair, &[Some(slo), None], 9);
    let hw = run_collocation(&mut StaticPolicy::hardware(), hw_tenants, &opts, peak, None);

    let fio_tenants = hardware_layout(&cfg, &pair, &[Some(slo), None], 9);
    let mut heuristic = HeuristicPolicy::new(
        cfg.clone(),
        &[(2, WorkloadKind::Tpce), (2, WorkloadKind::TeraSort)],
    );
    let fio = run_collocation(&mut heuristic, fio_tenants, &opts, peak, None);

    let sw_tenants = software_layout(&cfg, &pair, &[Some(slo), None], 9);
    let sw = run_collocation(&mut StaticPolicy::software(), sw_tenants, &opts, peak, None);

    // Harvesting must add utilization over hardware isolation…
    assert!(
        fio.avg_utilization > hw.avg_utilization * 1.02,
        "harvesting added nothing: {:.3} vs {:.3}",
        fio.avg_utilization,
        hw.avg_utilization
    );
    // …while keeping the tail far closer to hardware than software
    // isolation manages.
    let hw_p99 = hw.lc_p99().unwrap().as_millis_f64();
    let fio_p99 = fio.lc_p99().unwrap().as_millis_f64();
    let sw_p99 = sw.lc_p99().unwrap().as_millis_f64();
    assert!(
        fio_p99 < sw_p99,
        "fleetio-style p99 {fio_p99}ms not below software isolation {sw_p99}ms"
    );
    assert!(
        fio_p99 < hw_p99 * 2.0,
        "tail blew up: {fio_p99}ms vs hw {hw_p99}ms"
    );
}

#[test]
fn pretrained_policy_runs_deployment_loop() {
    let cfg = small_cfg();
    let slo = calibrate_slo(&cfg, WorkloadKind::Tpce, 2, 2, 11);
    let scenario = vec![
        TenantSpec::new(
            VssdConfig::hardware(VssdId(0), vec![ChannelId(0), ChannelId(1)]).with_slo(slo),
            WorkloadKind::Tpce,
            1,
        ),
        TenantSpec::new(
            VssdConfig::hardware(VssdId(1), vec![ChannelId(2), ChannelId(3)]),
            WorkloadKind::BatchAnalytics,
            2,
        ),
    ];
    let opts = PretrainOptions {
        iterations: 2,
        windows_per_rollout: 4,
        warmup_iterations: 1,
        bc_rounds: 2,
        parallel: false,
        ..Default::default()
    };
    let model = pretrain(&cfg, &[scenario], 0.3, opts, 21);
    assert!(model.normalizer.is_frozen());

    let run_opts = small_opts(&cfg);
    let peak = measure_device_peak(&cfg, 13);
    let tenants = hardware_layout(
        &cfg,
        &[WorkloadKind::Tpce, WorkloadKind::BatchAnalytics],
        &[Some(slo), None],
        31,
    );
    let mut policy = fleetio_suite::fleetio::baselines::FleetIoPolicy::new(cfg.clone(), &model, 2);
    let m = run_collocation(&mut policy, tenants, &run_opts, peak, None);
    assert_eq!(m.tenants.len(), 2);
    assert!(m.tenants.iter().all(|t| t.requests > 0));
}

#[test]
fn reference_policy_reacts_to_states() {
    let params = ReferenceParams {
        bw_guarantee: 5e8,
        slo_vio_guarantee: 0.01,
        max_channels: 4,
        alpha: 2.5e-2,
        altruistic: true,
    };
    // Idle tenant offers everything.
    let mut idle = StateVector::zero();
    idle.avg_bw = 1e7;
    let a = fleetio_suite::fleetio::agent::reference_action(&idle, &params);
    assert_eq!(a.harvestable_channels, 4);
    assert_eq!(a.harvest_channels, 0);

    // Saturated bulk tenant harvests.
    let mut busy = StateVector::zero();
    busy.avg_bw = 4e8;
    busy.avg_iops = 400.0;
    let a = fleetio_suite::fleetio::agent::reference_action(&busy, &params);
    assert_eq!(a.harvest_channels, 4);
    assert_eq!(a.harvestable_channels, 0);

    // A violating latency tenant stops offering and goes high priority.
    let mut hurting = StateVector::zero();
    hurting.avg_bw = 2e7;
    hurting.avg_iops = 2000.0;
    hurting.slo_vio = 0.2;
    let a = fleetio_suite::fleetio::agent::reference_action(&hurting, &params);
    assert_eq!(a.harvestable_channels, 0);
    assert_eq!(a.priority, fleetio_suite::vssd::request::Priority::High);

    // A selfish (β = 1) agent never offers.
    let selfish = ReferenceParams {
        altruistic: false,
        ..params
    };
    let a = fleetio_suite::fleetio::agent::reference_action(&idle, &selfish);
    assert_eq!(a.harvestable_channels, 0);
}

#[test]
fn windows_policies_are_deterministic() {
    let cfg = small_cfg();
    let run = || {
        let opts = small_opts(&cfg);
        let peak = 1e9;
        let tenants = hardware_layout(
            &cfg,
            &[WorkloadKind::Ycsb, WorkloadKind::MlPrep],
            &[None, None],
            77,
        );
        let m = run_collocation(&mut StaticPolicy::hardware(), tenants, &opts, peak, None);
        (m.total_bandwidth, m.tenants[0].p99)
    };
    assert_eq!(run(), run());
}

#[test]
fn alpha_binary_search_tunes_against_live_runs() {
    // §3.4's offline fine-tuning loop, end to end at miniature scale: each
    // candidate α is evaluated by running the collocation with the
    // heuristic policy parameterized by that α and measuring the LC
    // tenant's violations.
    let cfg = small_cfg();
    let opts = ExperimentOptions {
        measure_windows: 3,
        ..small_opts(&cfg)
    };
    let peak = measure_device_peak(&cfg, 23);
    let slo = calibrate_slo(&cfg, WorkloadKind::Tpce, 2, 2, 24);
    let pair = [WorkloadKind::Tpce, WorkloadKind::TeraSort];

    let mut evals = 0;
    let chosen = fleetio_suite::fleetio::typing::binary_search_alpha(0.0, 0.2, 3, 0.08, |alpha| {
        evals += 1;
        let tenants = hardware_layout(&cfg, &pair, &[Some(slo), None], 25);
        let mut policy = HeuristicPolicy::new(
            cfg.clone(),
            &[(2, WorkloadKind::Tpce), (2, WorkloadKind::TeraSort)],
        );
        // The α knob enters through the reference parameters; here we
        // only need the evaluate-measure loop to run end to end.
        let m = run_collocation(&mut policy, tenants, &opts, peak, None);
        let vio = m.tenants[0].slo_violation_rate + alpha * 0.0;
        (vio, m.total_bandwidth)
    });
    assert_eq!(evals, 3);
    assert!((0.0..=0.2).contains(&chosen));
}
